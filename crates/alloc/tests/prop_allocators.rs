//! Property tests: every allocator model upholds the malloc contract under
//! arbitrary allocate/free scripts — blocks are aligned, disjoint while
//! live, and reusable after free.

use proptest::prelude::*;
use tm_alloc::AllocatorKind;
use tm_sim::{MachineConfig, Sim};

#[derive(Clone, Debug)]
enum Op {
    Malloc(u64),
    /// Free the nth oldest live block (index modulo live count).
    Free(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u64..600).prop_map(Op::Malloc),
        2 => (0usize..64).prop_map(Op::Free),
    ]
}

fn check(kind: AllocatorKind, ops: &[Op]) -> Result<(), TestCaseError> {
    let sim = Sim::new(MachineConfig::xeon_e5405());
    let alloc = kind.build(&sim);
    let ops = ops.to_vec();
    let result = std::sync::Mutex::new(Ok(()));
    sim.run(1, |ctx| {
        let mut live: Vec<(u64, u64)> = Vec::new();
        for op in &ops {
            match op {
                Op::Malloc(size) => {
                    let p = alloc.malloc(ctx, *size);
                    if p % 8 != 0 {
                        *result.lock().unwrap() =
                            Err(TestCaseError::fail(format!("{kind:?}: misaligned {p:#x}")));
                        return;
                    }
                    for &(q, qs) in &live {
                        if !(p + size <= q || q + qs <= p) {
                            *result.lock().unwrap() = Err(TestCaseError::fail(format!(
                                "{kind:?}: overlap [{p:#x},{size}) vs [{q:#x},{qs})"
                            )));
                            return;
                        }
                    }
                    // Blocks must be writable end to end.
                    ctx.write_u64(p, 0xdead);
                    if *size >= 16 {
                        ctx.write_u64(p + (size - 8) / 8 * 8, 0xbeef);
                    }
                    live.push((p, *size));
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let (p, _) = live.remove(i % live.len());
                        alloc.free(ctx, p);
                    }
                }
            }
        }
    });
    result.into_inner().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn glibc_contract(ops in prop::collection::vec(op_strategy(), 1..60)) {
        check(AllocatorKind::Glibc, &ops)?;
    }

    #[test]
    fn hoard_contract(ops in prop::collection::vec(op_strategy(), 1..60)) {
        check(AllocatorKind::Hoard, &ops)?;
    }

    #[test]
    fn tbb_contract(ops in prop::collection::vec(op_strategy(), 1..60)) {
        check(AllocatorKind::TbbMalloc, &ops)?;
    }

    #[test]
    fn tcmalloc_contract(ops in prop::collection::vec(op_strategy(), 1..60)) {
        check(AllocatorKind::TcMalloc, &ops)?;
    }
}
