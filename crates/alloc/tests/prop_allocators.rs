//! Property tests: every allocator model upholds the malloc contract under
//! arbitrary allocate/free scripts. The scripts come from the shared
//! generators in `tm_check::strategies`, and the contract itself (alignment,
//! disjointness of live blocks, legal frees) is enforced by routing every
//! call through the reusable [`tm_alloc::HeapAuditor`]; only writability —
//! which needs the simulated memory — is checked inline.

use proptest::prelude::*;
use tm_alloc::{Allocator, AllocatorKind};
use tm_check::strategies::{alloc_ops, AllocOp};
use tm_sim::{MachineConfig, Sim};

fn check(kind: AllocatorKind, ops: &[AllocOp]) -> Result<(), TestCaseError> {
    let sim = Sim::new(MachineConfig::xeon_e5405());
    let auditor = kind.build_audited(&sim);
    let ops = ops.to_vec();
    let alloc = auditor.clone();
    sim.run(1, |ctx| {
        let mut live: Vec<(u64, u64)> = Vec::new();
        for op in &ops {
            match *op {
                AllocOp::Malloc(size) => {
                    let p = alloc.malloc(ctx, size);
                    // Blocks must be writable end to end.
                    ctx.write_u64(p, 0xdead);
                    if size >= 16 {
                        ctx.write_u64(p + (size - 8) / 8 * 8, 0xbeef);
                    }
                    live.push((p, size));
                }
                AllocOp::Free(i) => {
                    if !live.is_empty() {
                        let (p, _) = live.remove(i % live.len());
                        alloc.free(ctx, p);
                    }
                }
            }
        }
    });
    let report = auditor.report();
    if report.is_clean() {
        Ok(())
    } else {
        Err(TestCaseError::fail(format!(
            "{kind:?}: {} violation(s): {}",
            report.violation_count,
            report.violations.join("; ")
        )))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn glibc_contract(ops in alloc_ops(60)) {
        check(AllocatorKind::Glibc, &ops)?;
    }

    #[test]
    fn hoard_contract(ops in alloc_ops(60)) {
        check(AllocatorKind::Hoard, &ops)?;
    }

    #[test]
    fn tbb_contract(ops in alloc_ops(60)) {
        check(AllocatorKind::TbbMalloc, &ops)?;
    }

    #[test]
    fn tcmalloc_contract(ops in alloc_ops(60)) {
        check(AllocatorKind::TcMalloc, &ops)?;
    }
}
