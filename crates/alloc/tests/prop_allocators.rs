//! Property tests: every allocator model upholds the malloc contract under
//! arbitrary allocate/free scripts. The scripts come from the shared
//! generators in `tm_check::strategies`, and the contract itself (alignment,
//! disjointness of live blocks, legal frees) is enforced by routing every
//! call through the reusable [`tm_alloc::HeapAuditor`]; only writability —
//! which needs the simulated memory — is checked inline.

use std::sync::Arc;

use proptest::prelude::*;
use tm_alloc::{AllocFaultPlan, Allocator, AllocatorKind, FaultInjector, HeapAuditor};
use tm_check::strategies::{alloc_ops, AllocOp};
use tm_sim::{MachineConfig, Sim};

fn check(kind: AllocatorKind, ops: &[AllocOp]) -> Result<(), TestCaseError> {
    let sim = Sim::new(MachineConfig::xeon_e5405());
    let auditor = kind.build_audited(&sim);
    let ops = ops.to_vec();
    let alloc = auditor.clone();
    sim.run(1, |ctx| {
        let mut live: Vec<(u64, u64)> = Vec::new();
        for op in &ops {
            match *op {
                AllocOp::Malloc(size) => {
                    let p = alloc.malloc(ctx, size);
                    // Blocks must be writable end to end.
                    ctx.write_u64(p, 0xdead);
                    if size >= 16 {
                        ctx.write_u64(p + (size - 8) / 8 * 8, 0xbeef);
                    }
                    live.push((p, size));
                }
                AllocOp::Free(i) => {
                    if !live.is_empty() {
                        let (p, _) = live.remove(i % live.len());
                        alloc.free(ctx, p);
                    }
                }
            }
        }
    });
    let report = auditor.report();
    if report.is_clean() {
        Ok(())
    } else {
        Err(TestCaseError::fail(format!(
            "{kind:?}: {} violation(s): {}",
            report.violation_count,
            report.violations.join("; ")
        )))
    }
}

/// Drive an allocator to exhaustion (via a fault-plan byte budget) and
/// back: fill until `try_malloc` refuses, free everything, then re-fill
/// to the same capacity. The error path must leave no metadata damage —
/// the full cycle has to audit clean with zero live blocks.
fn exhaust_and_recover(kind: AllocatorKind, sizes: &[u64]) -> Result<(), TestCaseError> {
    const BUDGET: u64 = 4096;
    let sim = Sim::new(MachineConfig::xeon_e5405());
    let injector = FaultInjector::new(kind.build(&sim), AllocFaultPlan::ByteBudget(BUDGET));
    let auditor = HeapAuditor::new(injector);
    let alloc = Arc::clone(&auditor);
    let sizes = sizes.to_vec();
    sim.run(1, |ctx| {
        let fill = |ctx: &mut tm_sim::Ctx<'_>| {
            let mut live = Vec::new();
            for &s in sizes.iter().cycle() {
                match alloc.try_malloc(ctx, s) {
                    Ok(p) => {
                        ctx.write_u64(p, 0xfeed); // blocks must stay usable
                        live.push(p);
                    }
                    Err(_) => return live,
                }
            }
            unreachable!("a finite budget must eventually refuse");
        };
        let first = fill(ctx);
        assert!(
            !first.is_empty(),
            "{kind:?}: budget refused the first block"
        );
        let capacity = first.len();
        for p in first {
            alloc.try_free(ctx, p).expect("freeing a live block");
        }
        // Exhaustion and unwinding must not have cost any capacity.
        let second = fill(ctx);
        assert_eq!(second.len(), capacity, "{kind:?}: capacity lost after OOM");
        for p in second {
            alloc.try_free(ctx, p).expect("freeing a live block");
        }
    });
    let report = auditor.report();
    prop_assert!(
        report.is_clean(),
        "{kind:?}: {} violation(s): {}",
        report.violation_count,
        report.violations.join("; ")
    );
    prop_assert_eq!(report.live, 0, "{:?}: blocks leaked across the cycle", kind);
    prop_assert!(report.failed_mallocs >= 2, "both fills must hit the budget");
    Ok(())
}

/// An inert (`None`-plan) fault injector must be observationally
/// invisible: same addresses handed out and same virtual time as the
/// bare allocator for an identical call script.
fn none_plan_is_identity(kind: AllocatorKind, ops: &[AllocOp]) -> Result<(), TestCaseError> {
    let run = |wrap: bool| {
        let sim = Sim::new(MachineConfig::xeon_e5405());
        let bare = kind.build(&sim);
        let alloc: Arc<dyn Allocator> = if wrap {
            FaultInjector::new(bare, AllocFaultPlan::None)
        } else {
            bare
        };
        let ops = ops.to_vec();
        let log = parking_lot::Mutex::new((Vec::new(), 0u64));
        sim.run(1, |ctx| {
            let mut live: Vec<u64> = Vec::new();
            for op in &ops {
                match *op {
                    AllocOp::Malloc(size) => live.push(alloc.try_malloc(ctx, size).unwrap()),
                    AllocOp::Free(i) => {
                        if !live.is_empty() {
                            let p = live.remove(i % live.len());
                            alloc.try_free(ctx, p).unwrap();
                        }
                    }
                }
            }
            *log.lock() = (live, ctx.now());
        });
        log.into_inner()
    };
    let (bare_addrs, bare_now) = run(false);
    let (wrapped_addrs, wrapped_now) = run(true);
    prop_assert_eq!(bare_addrs, wrapped_addrs, "{:?}: addresses diverged", kind);
    prop_assert_eq!(bare_now, wrapped_now, "{:?}: virtual time diverged", kind);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn glibc_contract(ops in alloc_ops(60)) {
        check(AllocatorKind::Glibc, &ops)?;
    }

    #[test]
    fn hoard_contract(ops in alloc_ops(60)) {
        check(AllocatorKind::Hoard, &ops)?;
    }

    #[test]
    fn tbb_contract(ops in alloc_ops(60)) {
        check(AllocatorKind::TbbMalloc, &ops)?;
    }

    #[test]
    fn tcmalloc_contract(ops in alloc_ops(60)) {
        check(AllocatorKind::TcMalloc, &ops)?;
    }

    #[test]
    fn glibc_exhausts_and_recovers(sizes in prop::collection::vec(8u64..512, 1..8)) {
        exhaust_and_recover(AllocatorKind::Glibc, &sizes)?;
    }

    #[test]
    fn hoard_exhausts_and_recovers(sizes in prop::collection::vec(8u64..512, 1..8)) {
        exhaust_and_recover(AllocatorKind::Hoard, &sizes)?;
    }

    #[test]
    fn tbb_exhausts_and_recovers(sizes in prop::collection::vec(8u64..512, 1..8)) {
        exhaust_and_recover(AllocatorKind::TbbMalloc, &sizes)?;
    }

    #[test]
    fn tcmalloc_exhausts_and_recovers(sizes in prop::collection::vec(8u64..512, 1..8)) {
        exhaust_and_recover(AllocatorKind::TcMalloc, &sizes)?;
    }

    #[test]
    fn disabled_fault_plan_is_invisible(ops in alloc_ops(40)) {
        for kind in AllocatorKind::ALL {
            none_plan_is_identity(kind, &ops)?;
        }
    }
}
