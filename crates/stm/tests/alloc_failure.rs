//! Allocation-failure semantics: a failed `Tx::try_malloc` must become a
//! clean transactional abort — journal unwound, no locks held, no leaks —
//! and `Stm::try_txn` must retry within the contention manager's budget
//! before propagating the allocator's error. The heap auditor sits on top
//! of the fault injector for the whole suite, so any metadata damage or
//! leak on the error path fails the test.

use std::sync::Arc;

use tm_alloc::{AllocError, AllocFaultPlan, Allocator, AllocatorKind, FaultInjector, HeapAuditor};
use tm_sim::{MachineConfig, Sim};
use tm_stm::{AbortCause, CmKind, InjectedBug, Stm, StmConfig};

/// STM over `HeapAuditor(FaultInjector(tbbmalloc))` — the same stack the
/// every-site OOM sweep uses (auditor outermost, so auditor and injector
/// agree on allocation-site numbering).
fn setup(plan: AllocFaultPlan, cfg: StmConfig) -> (Sim, Stm, Arc<HeapAuditor>) {
    let sim = Sim::new(MachineConfig::xeon_e5405());
    let injector = FaultInjector::new(AllocatorKind::TbbMalloc.build(&sim), plan);
    let auditor = HeapAuditor::new(injector);
    let stm = Stm::new(&sim, Arc::clone(&auditor) as Arc<dyn Allocator>, cfg);
    (sim, stm, auditor)
}

#[test]
fn transient_failure_aborts_cleanly_and_commits_on_retry() {
    // The very first allocation attempt fails (site 0); the retry hits
    // site 1 and succeeds. One clean alloc-failed abort, one commit.
    let (sim, stm, auditor) = setup(AllocFaultPlan::NthSite(0), StmConfig::default());
    let committed = parking_lot::Mutex::new(0u64);
    sim.run(1, |ctx| {
        let mut th = stm.thread(0);
        let addr = stm
            .try_txn(ctx, &mut th, |tx, ctx| {
                let a = tx.try_malloc(ctx, 64)?;
                tx.write(ctx, a, 0x11)?;
                Ok(a)
            })
            .expect("one injected failure is transient");
        *committed.lock() = addr;
        stm.retire(th);
    });
    let addr = *committed.lock();
    sim.with_state(|m| assert_eq!(m.read_u64(addr), 0x11));
    let s = stm.stats();
    assert_eq!(s.commits, 1);
    assert_eq!(s.by_cause[AbortCause::AllocFailed as usize], 1);
    let report = auditor.report();
    assert!(report.is_clean(), "{}", report.violations.join("; "));
    assert_eq!(report.live, 1, "exactly the committed block survives");
    assert_eq!(report.failed_mallocs, 1);
}

#[test]
fn persistent_exhaustion_propagates_after_the_budget() {
    // A zero-byte budget refuses every request: SUICIDE's budget of two
    // alloc-failed aborts is spent, then the real error surfaces.
    let (sim, stm, auditor) = setup(AllocFaultPlan::ByteBudget(0), StmConfig::default());
    sim.run(1, |ctx| {
        let mut th = stm.thread(0);
        let r = stm.try_txn(ctx, &mut th, |tx, ctx| tx.try_malloc(ctx, 64));
        match r {
            Err(AllocError::Exhausted { size: 64 }) => {}
            other => panic!("expected Exhausted {{ size: 64 }}, got {other:?}"),
        }
        stm.retire(th);
    });
    let s = stm.stats();
    assert_eq!(s.commits, 0);
    assert_eq!(
        s.by_cause[AbortCause::AllocFailed as usize],
        u64::from(CmKind::Suicide.alloc_retry_budget())
    );
    let report = auditor.report();
    assert!(report.is_clean(), "{}", report.violations.join("; "));
    assert_eq!(
        report.live, 0,
        "a failed transaction must leave nothing live"
    );
}

#[test]
fn partial_journal_is_unwound_on_every_failed_attempt() {
    // The class cap admits one 64-byte block: the second allocation of the
    // pair always fails, so each attempt must free the block it already
    // journaled. Any leak would also pin the cap and break the retries.
    let plan = AllocFaultPlan::ClassCap {
        size: 64,
        max_live: 1,
    };
    let (sim, stm, auditor) = setup(plan, StmConfig::default());
    sim.run(1, |ctx| {
        let mut th = stm.thread(0);
        let r = stm.try_txn(ctx, &mut th, |tx, ctx| {
            let _a = tx.try_malloc(ctx, 64)?;
            let b = tx.try_malloc(ctx, 64)?;
            Ok(b)
        });
        assert!(matches!(r, Err(AllocError::Exhausted { size: 64 })));
        stm.retire(th);
    });
    let budget = u64::from(CmKind::Suicide.alloc_retry_budget());
    let report = auditor.report();
    assert!(report.is_clean(), "{}", report.violations.join("; "));
    assert_eq!(report.live, 0, "each attempt's first block must be unwound");
    assert_eq!(report.mallocs, budget, "one successful alloc per attempt");
    assert_eq!(report.failed_mallocs, budget);
}

#[test]
fn retry_budget_follows_the_contention_manager() {
    for cm in CmKind::ALL {
        let cfg = StmConfig {
            cm,
            ..StmConfig::default()
        };
        let (sim, stm, auditor) = setup(AllocFaultPlan::ByteBudget(0), cfg);
        sim.run(1, |ctx| {
            let mut th = stm.thread(0);
            let r = stm.try_txn(ctx, &mut th, |tx, ctx| tx.try_malloc(ctx, 32));
            assert!(r.is_err(), "{cm:?}: a zero budget can never commit");
            stm.retire(th);
        });
        assert_eq!(
            stm.stats().by_cause[AbortCause::AllocFailed as usize],
            u64::from(cm.alloc_retry_budget()),
            "{cm:?}: every budgeted retry is one recorded alloc-failed abort"
        );
        assert_eq!(auditor.report().live, 0, "{cm:?}: no leak on propagation");
    }
}

#[test]
fn leak_on_alloc_fail_bug_leaks_the_journal() {
    // With the injected defect, the alloc-failed rollback forgets its
    // journal: each attempt's first block stays live — exactly what the
    // every-site OOM sweep must observe through the auditor.
    let plan = AllocFaultPlan::ClassCap {
        size: 64,
        max_live: 1,
    };
    let cfg = StmConfig {
        bug: InjectedBug::LeakOnAllocFail,
        ..StmConfig::default()
    };
    let (sim, stm, auditor) = setup(plan, cfg);
    sim.run(1, |ctx| {
        let mut th = stm.thread(0);
        let r = stm.try_txn(ctx, &mut th, |tx, ctx| {
            let _a = tx.try_malloc(ctx, 64)?;
            let b = tx.try_malloc(ctx, 64)?;
            Ok(b)
        });
        // The leaked block pins the class cap, so the first allocation of
        // the second attempt already fails; the budget is still spent.
        assert!(r.is_err());
        stm.retire(th);
    });
    let report = auditor.report();
    assert!(
        report.live > 0,
        "the injected leak must leave journaled blocks live"
    );
}

#[test]
#[should_panic(expected = "repeated allocation failures")]
fn txn_panics_on_persistent_exhaustion() {
    let (sim, stm, _auditor) = setup(AllocFaultPlan::ByteBudget(0), StmConfig::default());
    sim.run(1, |ctx| {
        let mut th = stm.thread(0);
        stm.txn(ctx, &mut th, |tx, ctx| tx.try_malloc(ctx, 64));
    });
}
