//! Tests of the STM design extensions: TL2-style commit-time locking and
//! the multiplicative ORT hash. Both must preserve full transactional
//! semantics; the hash must kill the §5.2 arena-aliasing false conflicts.

use std::sync::Arc;
use tm_alloc::AllocatorKind;
use tm_sim::{MachineConfig, Sim};
use tm_stm::{LockDesign, OrtHash, Stm, StmConfig};

fn stack(cfg: StmConfig) -> (Sim, Arc<Stm>) {
    let sim = Sim::new(MachineConfig::xeon_e5405());
    let alloc = AllocatorKind::TbbMalloc.build(&sim);
    let stm = Arc::new(Stm::new(&sim, alloc, cfg));
    (sim, stm)
}

fn ctl() -> StmConfig {
    StmConfig {
        design: LockDesign::Ctl,
        ..StmConfig::default()
    }
}

#[test]
fn ctl_counter_is_exact() {
    let (sim, stm) = stack(ctl());
    let addr = 0x5000_0000u64;
    sim.run(8, |ctx| {
        let mut th = stm.thread(ctx.tid());
        for _ in 0..50 {
            stm.txn(ctx, &mut th, |tx, ctx| {
                let v = tx.read(ctx, addr)?;
                ctx.tick(20);
                tx.write(ctx, addr, v + 1)
            });
        }
        stm.retire(th);
    });
    sim.with_state(|m| assert_eq!(m.read_u64(addr), 400));
    assert!(stm.stats().aborts() > 0);
}

#[test]
fn ctl_transfer_atomicity() {
    let (sim, stm) = stack(ctl());
    let a = 0x6000_0000u64;
    let b = 0x6000_8000u64;
    sim.with_state(|m| {
        m.write_u64(a, 500);
        m.write_u64(b, 500);
    });
    sim.run(6, |ctx| {
        let mut th = stm.thread(ctx.tid());
        for i in 0..30u64 {
            let d = i % 5 + 1;
            stm.txn(ctx, &mut th, |tx, ctx| {
                let va = tx.read(ctx, a)?;
                let vb = tx.read(ctx, b)?;
                tx.write(ctx, a, va.wrapping_sub(d))?;
                tx.write(ctx, b, vb + d)
            });
        }
        stm.retire(th);
    });
    sim.with_state(|m| assert_eq!(m.read_u64(a).wrapping_add(m.read_u64(b)), 1000));
}

#[test]
fn ctl_read_own_write_and_buffering() {
    let (sim, stm) = stack(ctl());
    let addr = 0x7000_0000u64;
    sim.run(1, |ctx| {
        let mut th = stm.thread(0);
        stm.txn(ctx, &mut th, |tx, ctx| {
            tx.write(ctx, addr, 5)?;
            assert_eq!(tx.read(ctx, addr)?, 5);
            // Under CTL nothing is locked yet: memory still holds 0.
            assert_eq!(ctx.read_u64(addr), 0, "CTL must buffer until commit");
            Ok(())
        });
        stm.retire(th);
    });
    sim.with_state(|m| assert_eq!(m.read_u64(addr), 5));
}

#[test]
fn ctl_holds_locks_only_during_commit() {
    // A long CTL transaction writing a hot cell must not block a reader
    // mid-flight (ETL would): the reader only conflicts during the short
    // commit window, so at 2 threads the reader's abort count stays low.
    let (sim, stm) = stack(ctl());
    let hot = 0x7100_0000u64;
    sim.run(2, |ctx| {
        let mut th = stm.thread(ctx.tid());
        if ctx.tid() == 0 {
            for _ in 0..10 {
                stm.txn(ctx, &mut th, |tx, ctx| {
                    tx.write(ctx, hot, 1)?;
                    ctx.tick(20_000); // long tail after the write
                    Ok(())
                });
            }
        } else {
            for _ in 0..200 {
                stm.txn(ctx, &mut th, |tx, ctx| tx.read(ctx, hot).map(|_| ()));
                ctx.tick(500);
            }
        }
        stm.retire(th);
    });
    let s = stm.stats();
    // ETL would lock `hot` for ~20k cycles per writer txn, aborting most
    // of the reader's attempts; CTL keeps the abort count tiny.
    assert!(
        s.aborts() < 40,
        "CTL readers should rarely abort (got {})",
        s.aborts()
    );
}

#[test]
fn etl_vs_ctl_same_results_different_timing() {
    let run = |design| {
        let (sim, stm) = stack(StmConfig {
            design,
            ..StmConfig::default()
        });
        let base = 0x7200_0000u64;
        let r = sim.run(4, |ctx| {
            let mut th = stm.thread(ctx.tid());
            for i in 0..40u64 {
                let cell = base + (i % 4) * 4096;
                stm.txn(ctx, &mut th, |tx, ctx| {
                    let v = tx.read(ctx, cell)?;
                    tx.write(ctx, cell, v + 1)
                });
            }
            stm.retire(th);
        });
        let total: u64 = sim.with_state(|m| (0..4).map(|c| m.read_u64(base + c * 4096)).sum());
        (total, r.cycles)
    };
    let (etl_total, etl_cycles) = run(LockDesign::Etl);
    let (ctl_total, ctl_cycles) = run(LockDesign::Ctl);
    assert_eq!(etl_total, 160);
    assert_eq!(ctl_total, 160);
    assert_ne!(
        etl_cycles, ctl_cycles,
        "designs should not be timing-identical"
    );
}

#[test]
fn mix_hash_kills_arena_aliasing() {
    // §5.2: 64 MB-apart addresses alias under shift-mod but not under the
    // multiplicative hash.
    let (_sim, shiftmod) = stack(StmConfig::default());
    let (_sim2, mixed) = stack(StmConfig {
        ort_hash: OrtHash::Mix,
        ..StmConfig::default()
    });
    let a = 0x1800_0000u64;
    let b = 0x1c00_0000u64;
    assert_eq!(shiftmod.lock_addr_for(a), shiftmod.lock_addr_for(b));
    assert_ne!(mixed.lock_addr_for(a), mixed.lock_addr_for(b));
    // Same-stripe addresses still share a lock under both.
    assert_eq!(mixed.lock_addr_for(a), mixed.lock_addr_for(a + 16));
}

#[test]
fn mix_hash_stm_still_correct() {
    let (sim, stm) = stack(StmConfig {
        ort_hash: OrtHash::Mix,
        ..StmConfig::default()
    });
    let addr = 0x7300_0000u64;
    sim.run(4, |ctx| {
        let mut th = stm.thread(ctx.tid());
        for _ in 0..40 {
            stm.txn(ctx, &mut th, |tx, ctx| {
                let v = tx.read(ctx, addr)?;
                tx.write(ctx, addr, v + 1)
            });
        }
        stm.retire(th);
    });
    sim.with_state(|m| assert_eq!(m.read_u64(addr), 160));
}

mod write_through {
    use super::*;
    use tm_stm::{Abort, WriteMode};

    fn wt() -> StmConfig {
        StmConfig {
            write_mode: WriteMode::Through,
            ..StmConfig::default()
        }
    }

    #[test]
    fn counter_is_exact() {
        let (sim, stm) = stack(wt());
        let addr = 0xa000_0000u64;
        sim.run(8, |ctx| {
            let mut th = stm.thread(ctx.tid());
            for _ in 0..50 {
                stm.txn(ctx, &mut th, |tx, ctx| {
                    let v = tx.read(ctx, addr)?;
                    ctx.tick(20);
                    tx.write(ctx, addr, v + 1)
                });
            }
            stm.retire(th);
        });
        sim.with_state(|m| assert_eq!(m.read_u64(addr), 400));
    }

    #[test]
    fn writes_hit_memory_immediately_and_roll_back() {
        let (sim, stm) = stack(wt());
        let addr = 0xa100_0000u64;
        sim.run(1, |ctx| {
            let mut th = stm.thread(0);
            let mut first = true;
            stm.txn(ctx, &mut th, |tx, ctx| {
                tx.write(ctx, addr, 77)?;
                // Write-through: the value is already in memory.
                assert_eq!(ctx.read_u64(addr), 77);
                assert_eq!(tx.read(ctx, addr)?, 77, "read-own-write");
                if first {
                    first = false;
                    return Err(Abort::Explicit);
                }
                Ok(())
            });
            stm.retire(th);
        });
        // The abort restored the pre-image; the retry committed 77.
        sim.with_state(|m| assert_eq!(m.read_u64(addr), 77));
        assert_eq!(stm.stats().commits, 1);
    }

    #[test]
    fn multi_write_undo_restores_first_preimage() {
        let (sim, stm) = stack(wt());
        let addr = 0xa200_0000u64;
        sim.with_state(|m| m.write_u64(addr, 5));
        sim.run(1, |ctx| {
            let mut th = stm.thread(0);
            let mut aborted = false;
            stm.txn(ctx, &mut th, |tx, ctx| {
                tx.write(ctx, addr, 6)?;
                tx.write(ctx, addr, 7)?;
                if !aborted {
                    aborted = true;
                    // Mid-transaction state check then abort.
                    assert_eq!(ctx.read_u64(addr), 7);
                    return Err(Abort::Explicit);
                }
                Ok(())
            });
            stm.retire(th);
        });
        sim.with_state(|m| assert_eq!(m.read_u64(addr), 7));
    }

    #[test]
    fn transfer_atomicity_under_contention() {
        let (sim, stm) = stack(wt());
        let a = 0xa300_0000u64;
        let b = 0xa300_8000u64;
        sim.with_state(|m| {
            m.write_u64(a, 400);
            m.write_u64(b, 400);
        });
        sim.run(6, |ctx| {
            let mut th = stm.thread(ctx.tid());
            for i in 0..25u64 {
                let d = i % 4 + 1;
                stm.txn(ctx, &mut th, |tx, ctx| {
                    let va = tx.read(ctx, a)?;
                    let vb = tx.read(ctx, b)?;
                    tx.write(ctx, a, va.wrapping_sub(d))?;
                    tx.write(ctx, b, vb + d)
                });
            }
            stm.retire(th);
        });
        sim.with_state(|m| assert_eq!(m.read_u64(a).wrapping_add(m.read_u64(b)), 800));
    }

    #[test]
    #[should_panic(expected = "write-through requires encounter-time locking")]
    fn rejects_ctl_combination() {
        let _ = stack(StmConfig {
            write_mode: WriteMode::Through,
            design: LockDesign::Ctl,
            ..StmConfig::default()
        });
    }
}
