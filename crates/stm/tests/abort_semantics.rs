//! Focused tests of abort causes, timestamp extension and statistics.

use std::sync::Arc;
use tm_alloc::AllocatorKind;
use tm_sim::{MachineConfig, Sim};
use tm_stm::{Abort, AbortCause, Stm, StmConfig};

fn stack() -> (Sim, Arc<Stm>) {
    let sim = Sim::new(MachineConfig::xeon_e5405());
    let alloc = AllocatorKind::TbbMalloc.build(&sim);
    let stm = Arc::new(Stm::new(&sim, alloc, StmConfig::default()));
    (sim, stm)
}

#[test]
fn write_conflicts_attributed_to_write_locked() {
    let (sim, stm) = stack();
    let hot = 0x8000_0000u64;
    sim.run(4, |ctx| {
        let mut th = stm.thread(ctx.tid());
        for _ in 0..30 {
            stm.txn(ctx, &mut th, |tx, ctx| {
                tx.write(ctx, hot, ctx.tid() as u64)?;
                ctx.tick(300); // hold the stripe a while
                Ok(())
            });
        }
        stm.retire(th);
    });
    let s = stm.stats();
    assert!(s.by_cause[AbortCause::WriteLocked as usize] > 0);
    assert_eq!(s.commits, 120);
}

#[test]
fn readers_of_held_stripes_abort_as_read_locked() {
    let (sim, stm) = stack();
    let hot = 0x8100_0000u64;
    sim.run(2, |ctx| {
        let mut th = stm.thread(ctx.tid());
        if ctx.tid() == 0 {
            for _ in 0..20 {
                stm.txn(ctx, &mut th, |tx, ctx| {
                    tx.write(ctx, hot, 1)?;
                    ctx.tick(5_000);
                    Ok(())
                });
            }
        } else {
            for _ in 0..100 {
                stm.txn(ctx, &mut th, |tx, ctx| tx.read(ctx, hot).map(|_| ()));
                ctx.tick(700);
            }
        }
        stm.retire(th);
    });
    assert!(stm.stats().by_cause[AbortCause::ReadLocked as usize] > 0);
}

#[test]
fn extensions_are_counted() {
    // A long reader overlapping committing writers must extend.
    let (sim, stm) = stack();
    let cells: Vec<u64> = (0..8).map(|i| 0x8200_0000u64 + i * 4096).collect();
    let cells2 = cells.clone();
    sim.run(2, |ctx| {
        let mut th = stm.thread(ctx.tid());
        if ctx.tid() == 0 {
            // Writer: bump each cell in its own tx.
            for round in 0..20u64 {
                let cell = cells2[(round % 8) as usize];
                stm.txn(ctx, &mut th, |tx, ctx| tx.update(ctx, cell, |v| v + 1));
                ctx.tick(2_000);
            }
        } else {
            // Reader: slowly scan all cells in one tx, repeatedly.
            for _ in 0..10 {
                stm.txn(ctx, &mut th, |tx, ctx| {
                    let mut sum = 0;
                    for &c in &cells2 {
                        sum += tx.read(ctx, c)?;
                        ctx.tick(1_500);
                    }
                    Ok(sum)
                });
            }
        }
        stm.retire(th);
    });
    assert!(
        stm.stats().extensions > 0,
        "slow scans over a moving clock must extend"
    );
}

#[test]
fn explicit_retry_reruns_body() {
    let (sim, stm) = stack();
    let addr = 0x8300_0000u64;
    sim.run(1, |ctx| {
        let mut th = stm.thread(0);
        let mut tries = 0;
        stm.txn(ctx, &mut th, |tx, ctx| {
            tries += 1;
            tx.write(ctx, addr, tries)?;
            if tries < 4 {
                return Err(Abort::Explicit);
            }
            Ok(())
        });
        stm.retire(th);
    });
    sim.with_state(|m| assert_eq!(m.read_u64(addr), 4));
    assert_eq!(stm.stats().by_cause[AbortCause::Explicit as usize], 3);
    assert_eq!(stm.stats().commits, 1);
}

#[test]
fn reads_and_writes_counted() {
    let (sim, stm) = stack();
    sim.run(1, |ctx| {
        let mut th = stm.thread(0);
        stm.txn(ctx, &mut th, |tx, ctx| {
            for i in 0..5u64 {
                tx.read(ctx, 0x8400_0000 + i * 4096)?;
            }
            for i in 0..3u64 {
                tx.write(ctx, 0x8500_0000 + i * 4096, i)?;
            }
            Ok(())
        });
        stm.retire(th);
    });
    let s = stm.stats();
    assert_eq!(s.reads, 5);
    assert_eq!(s.writes, 3);
    assert_eq!(s.tx_mallocs, 0);
}

#[test]
fn ort_wraparound_shares_locks() {
    // Addresses exactly one ORT span apart (2^(20+5) bytes) collide: the
    // STM must remain correct (they conflict, not corrupt).
    let (sim, stm) = stack();
    let a = 0x9000_0000u64;
    let b = a + ((1u64 << 20) << 5);
    assert_eq!(stm.lock_addr_for(a), stm.lock_addr_for(b));
    sim.run(2, |ctx| {
        let mut th = stm.thread(ctx.tid());
        let target = if ctx.tid() == 0 { a } else { b };
        for _ in 0..40 {
            stm.txn(ctx, &mut th, |tx, ctx| tx.update(ctx, target, |v| v + 1));
        }
        stm.retire(th);
    });
    sim.with_state(|m| {
        assert_eq!(m.read_u64(a), 40);
        assert_eq!(m.read_u64(b), 40);
    });
}
