//! Property tests of the STM itself: arbitrary multi-threaded read/write
//! scripts over a small address pool must behave as *some* serial order —
//! checked via per-cell token conservation and snapshot consistency. The
//! conservation program is the shared one from `tm_check::explore`, so the
//! property here and the interleaving explorer in `tmstudy check` drive
//! exactly the same transaction shapes.

use proptest::prelude::*;
use std::sync::Arc;
use tm_alloc::AllocatorKind;
use tm_check::explore::{run_transfers, Schedule, TransferProgram};
use tm_sim::{MachineConfig, Sim};
use tm_stm::{InjectedBug, Stm, StmConfig};

fn stack() -> (Sim, Arc<Stm>) {
    let sim = Sim::new(MachineConfig::xeon_e5405());
    let alloc = AllocatorKind::TbbMalloc.build(&sim);
    let stm = Arc::new(Stm::new(&sim, alloc, StmConfig::default()));
    (sim, stm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Token conservation: transactions move random amounts between cells;
    /// the total is invariant no matter the interleaving or abort pattern.
    /// The program and runner are the shared ones from `tm_check::explore`;
    /// here the property quantifies over program shape *and* schedule.
    #[test]
    fn transfers_conserve_tokens(
        seed in any::<u64>(),
        threads in 2usize..6,
        cells in 2u64..6,
        txns in 5u64..20,
    ) {
        let program = TransferProgram { seed, threads, cells, txns };
        // Independent stream for the schedule, derived from the same seed.
        let mut x = seed.rotate_left(17) ^ 0xd1b5_4a32_d192_ed03;
        let delays: Vec<u64> = (0..program.points())
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) % 400
            })
            .collect();
        let total = run_transfers(&program, &Schedule(delays), InjectedBug::None);
        prop_assert_eq!(total, program.expected_total());
        // The undisturbed schedule conserves too.
        let calm = run_transfers(&program, &Schedule::zero(&program), InjectedBug::None);
        prop_assert_eq!(calm, program.expected_total());
    }

    /// Snapshot consistency: a transaction reading a pair of cells that
    /// are always updated together must never observe them out of sync.
    #[test]
    fn paired_cells_never_tear(seed in any::<u64>(), writers in 1usize..4) {
        let (sim, stm) = stack();
        let a = 0x5000_0000u64;
        let b = 0x5000_8000u64; // different stripes
        sim.run(writers + 1, |ctx| {
            let mut th = stm.thread(ctx.tid());
            if ctx.tid() == 0 {
                // Reader: both cells must always match.
                for _ in 0..60 {
                    let (va, vb) = stm.txn(ctx, &mut th, |tx, ctx| {
                        Ok((tx.read(ctx, a)?, tx.read(ctx, b)?))
                    });
                    assert_eq!(va, vb, "torn read: {va} vs {vb}");
                    ctx.tick(seed % 97 + 1);
                }
            } else {
                for i in 0..40u64 {
                    stm.txn(ctx, &mut th, |tx, ctx| {
                        let v = tx.read(ctx, a)?;
                        tx.write(ctx, a, v + 1)?;
                        tx.write(ctx, b, v + 1)
                    });
                    ctx.tick((seed >> 8) % 53 + i % 7);
                }
            }
            stm.retire(th);
        });
    }

    /// Transactional allocation atomicity: blocks from aborted transactions
    /// never leak into the committed structure.
    #[test]
    fn aborted_allocs_are_undone(seed in any::<u64>()) {
        let (sim, stm) = stack();
        let head = 0x6000_0000u64;
        sim.run(4, |ctx| {
            let mut th = stm.thread(ctx.tid());
            let mut x = seed ^ ctx.tid() as u64;
            for _ in 0..25 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                // Push a node onto a shared stack; every committed node
                // must carry the magic tag.
                stm.txn(ctx, &mut th, |tx, ctx| {
                    let node = tx.malloc(ctx, 16);
                    let old = tx.read(ctx, head)?;
                    ctx.write_u64(node + 8, old);
                    ctx.write_u64(node, 0xfeed_0000 + ctx.tid() as u64);
                    tx.write(ctx, head, node)
                });
                ctx.tick(x % 300);
            }
            stm.retire(th);
        });
        // Walk the stack raw: exactly 100 nodes, all tagged.
        sim.run(1, |ctx| {
            let mut cur = ctx.read_u64(head);
            let mut n = 0;
            while cur != 0 {
                let tag = ctx.read_u64(cur);
                assert!((0xfeed_0000..0xfeed_0008).contains(&tag), "bad tag {tag:#x}");
                cur = ctx.read_u64(cur + 8);
                n += 1;
            }
            assert_eq!(n, 100, "stack must hold one node per committed txn");
        });
    }
}
