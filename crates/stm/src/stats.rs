//! Commit/abort statistics — the paper's primary STM-side metric
//! (Table 4 reports the fraction of aborted transactions).

/// Why a transaction aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortCause {
    /// Read found the versioned lock held by another transaction.
    ReadLocked = 0,
    /// Write failed to acquire the versioned lock.
    WriteLocked = 1,
    /// Read-set validation failed (at commit or timestamp extension).
    Validation = 2,
    /// The lock word changed between the pre- and post-read probes.
    ReadRace = 3,
    /// The workload requested a restart.
    Explicit = 4,
    /// Sim-HTM only: a transactional line was evicted from the L1 (the
    /// hardware read/write set overflowed the cache).
    Capacity = 5,
    /// Sim-HTM only: a coherence invalidation (or remote read of a
    /// write-set line) hit a transactional line — the hardware analogue of
    /// a read/write conflict.
    Coherence = 6,
    /// `Tx::try_malloc` observed the allocator refuse the request (real
    /// exhaustion or an injected `AllocFaultPlan`); the transaction
    /// unwinds its allocation journal and the retry loop decides whether
    /// to retry or propagate the failure to the caller.
    AllocFailed = 7,
}

impl AbortCause {
    /// Number of variants (sizes the `by_cause` array).
    pub const COUNT: usize = 8;

    /// Stable lower-case label for reports.
    pub fn name(self) -> &'static str {
        match self {
            AbortCause::ReadLocked => "read-locked",
            AbortCause::WriteLocked => "write-locked",
            AbortCause::Validation => "validation",
            AbortCause::ReadRace => "read-race",
            AbortCause::Explicit => "explicit",
            AbortCause::Capacity => "capacity",
            AbortCause::Coherence => "coherence-conflict",
            AbortCause::AllocFailed => "alloc-failed",
        }
    }

    /// All variants, in slot order (report renderers iterate this).
    pub const ALL: [AbortCause; AbortCause::COUNT] = [
        AbortCause::ReadLocked,
        AbortCause::WriteLocked,
        AbortCause::Validation,
        AbortCause::ReadRace,
        AbortCause::Explicit,
        AbortCause::Capacity,
        AbortCause::Coherence,
        AbortCause::AllocFailed,
    ];
}

/// Per-thread (and merged global) transaction statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StmStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborts indexed by `AbortCause as usize`.
    pub by_cause: [u64; AbortCause::COUNT],
    /// Successful timestamp extensions.
    pub extensions: u64,
    /// Transactional loads performed.
    pub reads: u64,
    /// Transactional stores performed.
    pub writes: u64,
    /// Transactional allocations served by the object cache (Table 7
    /// effectiveness metric).
    pub cache_hits: u64,
    /// Allocations made inside transactions.
    pub tx_mallocs: u64,
    /// Frees requested inside transactions (deferred to commit).
    pub tx_frees: u64,
}

impl StmStats {
    /// Total aborted transaction attempts.
    pub fn aborts(&self) -> u64 {
        self.by_cause.iter().sum()
    }

    /// Fraction of transaction *attempts* that aborted, in `[0, 1]` — the
    /// quantity in the paper's Table 4.
    pub fn abort_ratio(&self) -> f64 {
        let total = self.commits + self.aborts();
        if total == 0 {
            0.0
        } else {
            self.aborts() as f64 / total as f64
        }
    }

    /// Count one aborted attempt under its cause.
    pub fn record_abort(&mut self, cause: AbortCause) {
        self.by_cause[cause as usize] += 1;
    }

    /// Accumulate another thread's stats into this one (all counters are
    /// additive, so merge order does not matter).
    pub fn merge(&mut self, o: &StmStats) {
        self.commits += o.commits;
        for i in 0..AbortCause::COUNT {
            self.by_cause[i] += o.by_cause[i];
        }
        self.extensions += o.extensions;
        self.reads += o.reads;
        self.writes += o.writes;
        self.cache_hits += o.cache_hits;
        self.tx_mallocs += o.tx_mallocs;
        self.tx_frees += o.tx_frees;
    }

    /// Report section with every counter, for `RunReport` emission.
    ///
    /// The `abort_alloc_failed` slot postdates every artifact frozen before
    /// the allocation-failure plane existed, so — mirroring the report
    /// v1/v1.1 discipline — it is emitted only when non-zero: runs without
    /// fault injection keep producing byte-identical reports.
    pub fn section(&self) -> tm_obs::Section {
        let mut section = tm_obs::Section::from_schema(self);
        if self.by_cause[AbortCause::AllocFailed as usize] == 0 {
            if let tm_obs::Section::Counters(items) = &mut section {
                items.retain(|(name, _)| name != "abort_alloc_failed");
            }
        }
        section
    }
}

// Lets retired threads' stats land in per-thread shards (`tm_obs::Sharded`)
// with the same slot-wise merge used by every other stats struct.
impl tm_obs::SlotSchema for StmStats {
    const WIDTH: usize = 7 + AbortCause::COUNT;

    fn slot_names() -> &'static [&'static str] {
        &[
            "commits",
            "abort_read_locked",
            "abort_write_locked",
            "abort_validation",
            "abort_read_race",
            "abort_explicit",
            "abort_capacity",
            "abort_coherence",
            "abort_alloc_failed",
            "extensions",
            "reads",
            "writes",
            "cache_hits",
            "tx_mallocs",
            "tx_frees",
        ]
    }

    fn store(&self, slots: &mut [u64]) {
        let base = 1 + AbortCause::COUNT;
        slots[0] = self.commits;
        slots[1..base].copy_from_slice(&self.by_cause);
        slots[base] = self.extensions;
        slots[base + 1] = self.reads;
        slots[base + 2] = self.writes;
        slots[base + 3] = self.cache_hits;
        slots[base + 4] = self.tx_mallocs;
        slots[base + 5] = self.tx_frees;
    }

    fn load(slots: &[u64]) -> Self {
        let base = 1 + AbortCause::COUNT;
        let mut by_cause = [0u64; AbortCause::COUNT];
        by_cause.copy_from_slice(&slots[1..base]);
        StmStats {
            commits: slots[0],
            by_cause,
            extensions: slots[base],
            reads: slots[base + 1],
            writes: slots[base + 2],
            cache_hits: slots[base + 3],
            tx_mallocs: slots[base + 4],
            tx_frees: slots[base + 5],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_ratio_math() {
        let mut s = StmStats {
            commits: 60,
            ..Default::default()
        };
        s.record_abort(AbortCause::ReadLocked);
        s.record_abort(AbortCause::ReadLocked);
        for _ in 0..38 {
            s.record_abort(AbortCause::Validation);
        }
        assert_eq!(s.aborts(), 40);
        assert!((s.abort_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_ratio_is_zero() {
        assert_eq!(StmStats::default().abort_ratio(), 0.0);
    }

    #[test]
    fn alloc_failed_slot_is_emitted_only_when_hit() {
        let names = <StmStats as tm_obs::SlotSchema>::slot_names();
        assert_eq!(names.len(), <StmStats as tm_obs::SlotSchema>::WIDTH);
        let has_slot = |s: &StmStats| match s.section() {
            tm_obs::Section::Counters(items) => {
                items.iter().any(|(n, _)| n == "abort_alloc_failed")
            }
            _ => unreachable!("stats sections are counters"),
        };
        let mut s = StmStats::default();
        assert!(
            !has_slot(&s),
            "zero alloc-failures must emit the frozen layout"
        );
        s.record_abort(AbortCause::AllocFailed);
        assert!(
            has_slot(&s),
            "a recorded alloc-failure must surface in reports"
        );
    }

    #[test]
    fn merge_accumulates() {
        let mut a = StmStats {
            commits: 5,
            ..Default::default()
        };
        let mut b = StmStats {
            commits: 7,
            ..Default::default()
        };
        b.record_abort(AbortCause::Explicit);
        a.merge(&b);
        assert_eq!(a.commits, 12);
        assert_eq!(a.by_cause[AbortCause::Explicit as usize], 1);
    }
}
