//! # tm-stm — a word-based, time-based, blocking STM
//!
//! A reimplementation of the STM design the paper evaluates (TinySTM 1.0.4
//! with its default configuration, §4): encounter-time locking (ETL) with a
//! write-back redo log, a global version clock, and the SUICIDE contention
//! management strategy (the transaction that detects the conflict aborts
//! itself and restarts immediately).
//!
//! Conflict detection uses an **ownership record table** (ORT) of `2^20`
//! versioned locks. The table lives in *simulated memory*, so every probe
//! goes through the cache model — lowering the stripe shift really does
//! increase L1 pressure, as the paper observes in §5.4. A memory address
//! maps to its versioned lock as
//!
//! ```text
//! ort_index = (addr >> shift) % ort_size        // shift = 5 by default
//! ```
//!
//! which makes 2^shift consecutive bytes share one lock — the interaction
//! surface with the allocators' block spacing and region alignment that the
//! whole study is about (Fig. 5).
//!
//! Transactional memory management follows the paper's §2: an allocator
//! wrapper annotates transactional allocations (undone on abort) and defers
//! frees to commit time. The optional object cache (see [`alloc`])
//! implements the §6.2 optimization: aborted allocations and committed
//! frees are kept in a thread-local pool instead of going back to the
//! system allocator.
//!
//! ```
//! use std::sync::Arc;
//! use tm_sim::{MachineConfig, Sim};
//! use tm_alloc::AllocatorKind;
//! use tm_stm::{Stm, StmConfig};
//!
//! let sim = Sim::new(MachineConfig::xeon_e5405());
//! let alloc = AllocatorKind::TbbMalloc.build(&sim);
//! let stm = Stm::new(&sim, Arc::clone(&alloc), StmConfig::default());
//!
//! // One shared counter, incremented transactionally by 4 threads.
//! let counter = 0x4000_0000u64;
//! sim.run(4, |ctx| {
//!     let mut th = stm.thread(ctx.tid());
//!     for _ in 0..10 {
//!         stm.txn(ctx, &mut th, |tx, ctx| {
//!             let v = tx.read(ctx, counter)?;
//!             tx.write(ctx, counter, v + 1)
//!         });
//!     }
//!     stm.retire(th);
//! });
//! sim.with_state(|m| assert_eq!(m.read_u64(counter), 40));
//! ```

#![deny(missing_docs)]

pub mod alloc;
mod backend;
mod cm;
mod stats;
mod table;
mod tx;

pub use backend::BackendKind;
pub use cm::{CmKind, CmStats, CmSwitch};
pub use stats::{AbortCause, StmStats};
pub use tx::{Abort, Tx, TxThread};

use std::sync::Arc;

use parking_lot::Mutex;
use tm_alloc::Allocator;
use tm_sim::{Ctx, Sim};

/// When are versioned locks acquired? The paper's two representative
/// word-based designs (§2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockDesign {
    /// Encounter-time locking (TinySTM default): writers take the stripe
    /// lock at the first write. Conflicts surface early.
    Etl,
    /// Commit-time locking (TL2-style): writes are buffered; all stripe
    /// locks are acquired at commit, in one short burst.
    Ctl,
}

/// Where transactional writes land before commit (TinySTM's two write
/// strategies; only meaningful with encounter-time locking).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteMode {
    /// Write-back: values are buffered in a redo log and land in memory at
    /// commit (TinySTM's default, the paper's configuration).
    Back,
    /// Write-through: values hit memory immediately under the stripe lock;
    /// aborts restore from an undo log. Cheaper commits, dearer aborts.
    Through,
}

/// How an address maps to its ORT entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrtHash {
    /// The paper's function: `(addr >> shift) % size`. Discards high bits —
    /// the source of the 64 MB-arena aliasing of §5.2.
    ShiftMod,
    /// Multiplicative mixing of the stripe number (the fix investigated in
    /// Riegel's thesis, which the paper cites): high bits participate, so
    /// aligned regions no longer collide — at the cost of destroying
    /// stripe-adjacency locality in the table.
    Mix,
}

/// Deliberately seeded STM defects, used **only** by the correctness
/// harness (`crates/check`) to prove its interleaving explorer can catch
/// real atomicity violations. Production configurations must use
/// [`InjectedBug::None`] (the default).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InjectedBug {
    /// No defect: the STM behaves as specified.
    #[default]
    None,
    /// Skip the read-set extension (ownership-record re-validation) that
    /// must run before an ETL write acquires a stripe whose version is
    /// newer than the transaction's snapshot. Commit-time validation
    /// treats self-owned stripes as trivially valid, so a transaction
    /// that raced a concurrent commit can publish values computed from
    /// stale reads — the classic lost-update anomaly.
    SkipWriteValidation,
    /// Skip the read-set extension on the read path when a stripe's
    /// version is newer than the snapshot, admitting torn (unserializable)
    /// read snapshots.
    SkipReadValidation,
    /// NOrec only: when the commit-time sequence-lock CAS loses a race with
    /// a concurrent committer, refresh the snapshot *without* value-
    /// validating the read set. Reads taken under the stale snapshot are
    /// trusted, so the transaction can publish values computed from data
    /// another commit already changed — NOrec's analogue of the ETL
    /// lost-update bug.
    NorecStaleSnapshot,
    /// Apply a transactional `free` immediately at the call site instead of
    /// deferring it to commit plus quiescence. The freed object becomes
    /// visible to the allocator (and thus to concurrent `malloc`s) before
    /// the freeing transaction commits — and the free survives even if that
    /// transaction aborts, so live, still-published memory can be recycled
    /// and overwritten.
    TxAllocEarlyFree,
    /// Contention management: a committing transaction that holds the
    /// global serialization token forgets to release it. Every later
    /// escalation to [`CmKind::Serialize`] then spins on a token nobody
    /// holds — a virtual-time livelock (caught by the simulator's fuel
    /// bound), or a token-word leak observable at quiescence.
    SerializeTokenLeak,
    /// Allocation-failure path: an [`AbortCause::AllocFailed`] rollback
    /// forgets to unwind the transactional allocation journal, so every
    /// block the failing transaction had already obtained leaks. The
    /// every-site OOM sweep (`crates/mc`) must catch this through the heap
    /// auditor and shrink it to the minimal failing allocation site.
    LeakOnAllocFail,
}

impl InjectedBug {
    /// Is this defect meaningful under `backend`? The ETL validation-skip
    /// faults live in ETL-only code paths, the stale-snapshot fault in the
    /// NOrec commit path; the allocation and contention-management faults
    /// sit above the backend and compose with all of them.
    pub fn applies_to(self, backend: BackendKind) -> bool {
        match self {
            InjectedBug::None
            | InjectedBug::TxAllocEarlyFree
            | InjectedBug::SerializeTokenLeak
            | InjectedBug::LeakOnAllocFail => true,
            InjectedBug::SkipWriteValidation | InjectedBug::SkipReadValidation => {
                backend == BackendKind::Etl
            }
            InjectedBug::NorecStaleSnapshot => backend == BackendKind::Norec,
        }
    }

    /// Short stable token used in reports and mutant labels.
    pub fn name(self) -> &'static str {
        match self {
            InjectedBug::None => "none",
            InjectedBug::SkipWriteValidation => "skip-write-validation",
            InjectedBug::SkipReadValidation => "skip-read-validation",
            InjectedBug::NorecStaleSnapshot => "norec-stale-snapshot",
            InjectedBug::TxAllocEarlyFree => "tx-alloc-early-free",
            InjectedBug::SerializeTokenLeak => "serialize-token-leak",
            InjectedBug::LeakOnAllocFail => "leak-on-alloc-fail",
        }
    }
}

/// STM configuration knobs exercised by the paper (plus the design
/// extensions: backend, lock acquisition time and ORT hashing).
#[derive(Clone, Debug)]
pub struct StmConfig {
    /// Concurrency-control backend (default: the paper's ownership-table
    /// ETL design). The `shift`/`ort_bits`/`design`/`write_mode`/
    /// `ort_hash` knobs below only affect [`BackendKind::Etl`].
    pub backend: BackendKind,
    /// Contention-management policy (default: the paper's SUICIDE). The
    /// CM layer sits above the backend — it reacts to aborts in the retry
    /// loop — so every [`CmKind`] composes with every [`BackendKind`].
    pub cm: CmKind,
    /// Stripe shift: `2^shift` consecutive bytes map to one versioned lock.
    /// The paper's default is 5 (32-byte stripes); Fig. 6 sweeps 4.
    pub shift: u32,
    /// log2 of the ORT entry count (TinySTM default: 20).
    pub ort_bits: u32,
    /// Enable the transactional object cache of §6.2 (Table 7).
    pub object_cache: bool,
    /// Lock acquisition design (default: ETL, the paper's configuration).
    pub design: LockDesign,
    /// Write strategy (default: write-back, the paper's configuration).
    /// `Through` requires `design == Etl`.
    pub write_mode: WriteMode,
    /// ORT mapping function (default: the paper's shift-and-modulo).
    pub ort_hash: OrtHash,
    /// Deliberately seeded defect for the correctness harness (default:
    /// [`InjectedBug::None`]). Never set outside `crates/check` tests.
    pub bug: InjectedBug,
}

impl Default for StmConfig {
    fn default() -> Self {
        StmConfig {
            backend: BackendKind::Etl,
            cm: CmKind::Suicide,
            shift: 5,
            ort_bits: 20,
            object_cache: false,
            design: LockDesign::Etl,
            write_mode: WriteMode::Back,
            ort_hash: OrtHash::ShiftMod,
            bug: InjectedBug::None,
        }
    }
}

/// The STM instance: ORT, global clock, allocator binding and statistics.
pub struct Stm {
    pub(crate) cfg: StmConfig,
    /// The concurrency-control backend (resolved once from
    /// `cfg.backend`; dispatch is one host-side vtable hop, far below the
    /// cost of a simulated cache access).
    pub(crate) backend: &'static dyn backend::TmBackend,
    /// The contention manager (resolved once from `cfg.cm`; the retry
    /// loop fast-paths [`CmKind::Suicide`] past this vtable entirely).
    pub(crate) cm: &'static dyn cm::ContentionManager,
    /// Simulated address of the global serialization token word, allocated
    /// only when `cfg.cm` can reach [`CmKind::Serialize`] (an unconditional
    /// allocation would shift every downstream simulated address and break
    /// byte-identity of default-configuration artifacts). 0 when absent.
    pub(crate) serialize_token: u64,
    /// Base simulated address of the ORT (entries are 8-byte words).
    pub(crate) ort_base: u64,
    pub(crate) ort_mask: u64,
    /// Simulated address of the global version clock.
    pub(crate) clock_addr: u64,
    pub(crate) allocator: Arc<dyn Allocator>,
    /// Per-thread stats shards: `retire` folds a worker's tally into its
    /// own cache-line-padded shard (no global lock); `stats` merges
    /// slot-wise.
    stats: tm_obs::Sharded<StmStats>,
    /// Per-thread contention-management stat shards (all-zero under the
    /// default SUICIDE configuration; see [`CmStats`]).
    cm_stats: tm_obs::Sharded<CmStats>,
    /// Adaptive-controller switch points surrendered by retired threads,
    /// as `(tid, switch)`. Host-side only; [`Stm::cm_switches`] returns
    /// them in deterministic `(tid, window)` order.
    cm_switch_log: Mutex<Vec<(usize, CmSwitch)>>,
    /// Sizes of live transactionally-allocated blocks (host-side registry
    /// feeding the object cache, which needs sizes at free time). Only
    /// touched when `cfg.object_cache` is on; see [`table::SizeRegistry`].
    pub(crate) sizes: table::SizeRegistry,
    /// Simulated base address of the per-thread snapshot array (one cache
    /// line per thread; 0 means idle, else snapshot+1). Drives
    /// quiescence-based reclamation: a transactionally-freed block reaches
    /// the allocator only once every in-flight snapshot postdates the free,
    /// so doomed readers can never observe recycled memory — TinySTM's
    /// epoch GC, reproduced. Living in simulated memory keeps reclamation
    /// decisions deterministic and charges their true cost.
    pub(crate) active_base: u64,
    pub(crate) cores: usize,
    /// Limbo blocks from retired threads, (free timestamp, addr, size).
    pub(crate) global_limbo: Mutex<Vec<(u64, u64, Option<u64>)>>,
    /// Optional observer of transaction boundaries: called with
    /// `(tid, true)` when a thread enters `txn` and `(tid, false)` when it
    /// leaves. Used by the Table 5 instrumentation to attribute allocator
    /// calls to the `tx` region.
    tx_hook: std::sync::OnceLock<Arc<dyn Fn(usize, bool) + Send + Sync>>,
}

impl Stm {
    /// Create an STM over `sim`'s machine, binding `allocator` for
    /// transactional memory management. The ORT and the clock are placed in
    /// simulated memory.
    pub fn new(sim: &Sim, allocator: Arc<dyn Allocator>, cfg: StmConfig) -> Self {
        assert!(
            !(cfg.write_mode == WriteMode::Through && cfg.design == LockDesign::Ctl),
            "write-through requires encounter-time locking"
        );
        if cfg.backend != BackendKind::Etl {
            assert!(
                cfg.design == LockDesign::Etl && cfg.write_mode == WriteMode::Back,
                "the design/write-mode knobs apply to the ETL backend only"
            );
        }
        assert!(
            cfg.bug.applies_to(cfg.backend),
            "injected bug {:?} does not apply to backend {:?}",
            cfg.bug,
            cfg.backend
        );
        let entries = 1u64 << cfg.ort_bits;
        let cores = sim.config().cores;
        let (ort_base, clock_addr, active_base, serialize_token) = sim.with_state(|m| {
            let ort = m.os_alloc(entries * 8, 64);
            // The clock gets its own cache line, as does each thread's
            // active-snapshot word.
            let clock = m.os_alloc(64, 64);
            let active = m.os_alloc(cores as u64 * 64, 64);
            // The serialization token is allocated only for configurations
            // that can reach it, so default runs keep the exact historical
            // address layout.
            let token = if cfg.cm.needs_token() {
                m.os_alloc(64, 64)
            } else {
                0
            };
            (ort, clock, active, token)
        });
        Stm {
            backend: cfg.backend.backend(),
            cm: cfg.cm.manager(),
            serialize_token,
            cfg,
            ort_base,
            ort_mask: entries - 1,
            clock_addr,
            allocator,
            stats: tm_obs::Sharded::new(cores),
            cm_stats: tm_obs::Sharded::new(cores),
            cm_switch_log: Mutex::new(Vec::new()),
            sizes: table::SizeRegistry::new(),
            active_base,
            cores,
            global_limbo: Mutex::new(Vec::new()),
            tx_hook: std::sync::OnceLock::new(),
        }
    }

    /// Install the transaction-boundary observer (set once, before use).
    pub fn set_tx_hook(&self, hook: Arc<dyn Fn(usize, bool) + Send + Sync>) {
        let _ = self.tx_hook.set(hook);
    }

    /// Simulated address of the global serialization token word, or 0 when
    /// the configured contention manager can never serialize. At any
    /// quiescent point the word must read 0 (no transaction in flight can
    /// hold the token); the model checker asserts this to catch token
    /// leaks.
    pub fn serialize_token_addr(&self) -> u64 {
        self.serialize_token
    }

    /// Simulated address of thread `tid`'s active-snapshot word.
    #[inline]
    pub(crate) fn active_addr(&self, tid: usize) -> u64 {
        self.active_base + tid as u64 * 64
    }

    /// The oldest snapshot any in-flight transaction may hold; blocks freed
    /// before this timestamp are safe to hand to the allocator. The scan
    /// reads simulated memory, so it is deterministic and costed.
    pub(crate) fn safe_timestamp(&self, ctx: &mut Ctx<'_>) -> u64 {
        let mut min = u64::MAX;
        for t in 0..self.cores {
            let w = ctx.read_u64(self.active_addr(t));
            if w != 0 {
                min = min.min(w - 1);
            }
        }
        min
    }

    /// Force-drain all limbo blocks. Only valid at a quiescent point (no
    /// transactions in flight on any thread) — e.g. between benchmark
    /// phases or at the end of a run with a retired `TxThread`.
    pub fn quiesce(&self, ctx: &mut Ctx<'_>) {
        let entries: Vec<(u64, u64, Option<u64>)> = std::mem::take(&mut *self.global_limbo.lock());
        for (_, addr, _) in entries {
            if self.cfg.object_cache {
                // Only object-cache runs register sizes (see `Tx::malloc`).
                self.sizes.remove(addr);
            }
            self.allocator.free(ctx, addr);
        }
    }

    /// Map an address to the simulated address of its versioned lock word,
    /// per the configured [`OrtHash`].
    #[inline]
    pub fn lock_addr_for(&self, addr: u64) -> u64 {
        let stripe = addr >> self.cfg.shift;
        let idx = match self.cfg.ort_hash {
            OrtHash::ShiftMod => stripe & self.ort_mask,
            OrtHash::Mix => (stripe.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) & self.ort_mask,
        };
        self.ort_base + 8 * idx
    }

    /// Create per-thread transaction state. One per worker thread.
    pub fn thread(&self, tid: usize) -> TxThread {
        TxThread::new(tid, self.cfg.object_cache, self.cfg.cm)
    }

    /// Fold a finished worker's statistics into the global tally. Call at
    /// the end of the worker closure.
    pub fn retire(&self, mut th: TxThread) {
        th.surrender_limbo(self);
        // Shard by tid; the modulo only matters if a caller minted more
        // thread descriptors than the machine has cores (totals are
        // preserved either way).
        self.stats.record(th.tid % self.cores, &th.stats);
        self.cm_stats.record(th.tid % self.cores, &th.cm_stats);
        if !th.switch_log.is_empty() {
            let mut log = self.cm_switch_log.lock();
            log.extend(th.switch_log.drain(..).map(|s| (th.tid, s)));
        }
    }

    /// Run `body` as a transaction, retrying on conflicts. How an abort is
    /// answered — restart pause, priority, serialization — is decided by
    /// the configured [`CmKind`] (default: the paper's SUICIDE, abort self
    /// and restart immediately). Returns the body's result once a commit
    /// succeeds.
    ///
    /// Panics if [`Tx::try_malloc`] keeps failing past the contention
    /// manager's [`CmKind::alloc_retry_budget`] — use [`Stm::try_txn`] to
    /// handle persistent allocation failure gracefully.
    pub fn txn<R>(
        &self,
        ctx: &mut Ctx<'_>,
        th: &mut TxThread,
        body: impl FnMut(&mut Tx<'_>, &mut Ctx<'_>) -> Result<R, Abort>,
    ) -> R {
        match self.try_txn(ctx, th, body) {
            Ok(r) => r,
            Err(e) => panic!(
                "transaction gave up after repeated allocation failures: {e} \
                 (use Stm::try_txn to handle exhaustion)"
            ),
        }
    }

    /// Like [`Stm::txn`], but surfaces persistent allocation failure
    /// instead of panicking. A failed [`Tx::try_malloc`] aborts the
    /// attempt with [`AbortCause::AllocFailed`] — the journal is unwound,
    /// all locks released — and the contention manager paces a bounded
    /// number of retries ([`CmKind::alloc_retry_budget`]); transient
    /// exhaustion (another thread frees between attempts) commits on a
    /// retry, while persistent exhaustion propagates the allocator's
    /// error after the budget is spent. Other abort causes reset the
    /// budget and retry forever, exactly as [`Stm::txn`] does.
    pub fn try_txn<R>(
        &self,
        ctx: &mut Ctx<'_>,
        th: &mut TxThread,
        mut body: impl FnMut(&mut Tx<'_>, &mut Ctx<'_>) -> Result<R, Abort>,
    ) -> Result<R, tm_alloc::AllocError> {
        if let Some(hook) = self.tx_hook.get() {
            hook(th.tid, true);
        }
        let r = self.txn_inner(ctx, th, &mut body);
        if let Some(hook) = self.tx_hook.get() {
            hook(th.tid, false);
        }
        r
    }

    fn txn_inner<R>(
        &self,
        ctx: &mut Ctx<'_>,
        th: &mut TxThread,
        body: &mut impl FnMut(&mut Tx<'_>, &mut Ctx<'_>) -> Result<R, Abort>,
    ) -> Result<R, tm_alloc::AllocError> {
        th.retries = 0;
        let mut alloc_failures = 0u32;
        cm::txn_start(self, th, ctx);
        loop {
            backend::begin(self, th, ctx);
            ctx.trace_event(tm_sim::EventKind::TxBegin, th.retries as u64, 0);
            let mut tx = Tx::new(self, th);
            match body(&mut tx, ctx) {
                Ok(r) => {
                    if tx.commit(ctx) {
                        let (reads, writes) = th.footprint();
                        ctx.trace_event(tm_sim::EventKind::TxCommit, reads, writes);
                        cm::after_commit(self, th, ctx);
                        return Ok(r);
                    }
                    // Commit-time validation failed; roll back and retry.
                    // Backends that can attribute the failure more
                    // precisely (sim-HTM's capacity/coherence dooms)
                    // refine the recorded cause in their rollback hook.
                    backend::rollback(self, th, ctx, AbortCause::Validation);
                    ctx.trace_event(tm_sim::EventKind::TxAbort, AbortCause::Validation as u64, 0);
                    alloc_failures = 0;
                }
                Err(Abort::Conflict(cause)) => {
                    backend::rollback(self, th, ctx, cause);
                    ctx.trace_event(tm_sim::EventKind::TxAbort, cause as u64, 0);
                    if cause == AbortCause::AllocFailed {
                        alloc_failures += 1;
                        if alloc_failures >= self.cfg.cm.alloc_retry_budget() {
                            // Retrying has not changed the allocator's
                            // answer; unwind finished in the rollback above,
                            // so hand the stashed error to the caller.
                            cm::propagate_alloc_failure(self, th, ctx);
                            return Err(th
                                .last_alloc_error
                                .take()
                                .expect("an AllocFailed abort stashes its error"));
                        }
                    } else {
                        alloc_failures = 0;
                    }
                }
                Err(Abort::Explicit) => {
                    backend::rollback(self, th, ctx, AbortCause::Explicit);
                    // Explicit retry: re-run (the workload asked for it).
                    ctx.trace_event(tm_sim::EventKind::TxAbort, AbortCause::Explicit as u64, 0);
                    alloc_failures = 0;
                }
            }
            cm::after_abort(self, th, ctx);
        }
    }

    /// Global statistics snapshot (retired threads only).
    pub fn stats(&self) -> StmStats {
        self.stats.merged()
    }

    /// Global contention-management statistics snapshot (retired threads
    /// only; all-zero under the default SUICIDE configuration).
    pub fn cm_stats(&self) -> CmStats {
        self.cm_stats.merged()
    }

    /// Every adaptive-controller policy switch taken by retired threads,
    /// as `(tid, switch)` sorted by `(tid, window)` — a deterministic
    /// transcript of the controller's behaviour.
    pub fn cm_switches(&self) -> Vec<(usize, CmSwitch)> {
        let mut log = self.cm_switch_log.lock().clone();
        log.sort_by_key(|(tid, s)| (*tid, s.window));
        log
    }

    /// Reset global statistics (e.g. after a warm-up phase).
    pub fn reset_stats(&self) {
        self.stats.reset();
        self.cm_stats.reset();
        self.cm_switch_log.lock().clear();
    }

    /// The bound allocator.
    pub fn allocator(&self) -> &Arc<dyn Allocator> {
        &self.allocator
    }

    /// Stripe size in bytes implied by the configured shift.
    pub fn stripe_bytes(&self) -> u64 {
        1 << self.cfg.shift
    }

    /// Capture the STM's **host-side** bookkeeping — stats shards, the
    /// contention-management switch log, the size registry and the limbo
    /// list — so [`Stm::restore_host`] can rewind it. The simulated half
    /// (ORT, version clock, active-snapshot array, serialization token)
    /// lives in machine memory and is the machine snapshot's to capture;
    /// pair this with `Sim::snapshot`. Call only at quiescence (no workers
    /// in flight, every `TxThread` retired). The `tx_hook` is deliberately
    /// excluded: it is set-once configuration, not run state.
    pub fn snapshot_host(&self) -> StmHostSnapshot {
        StmHostSnapshot {
            stats_rows: (0..self.cores)
                .map(|t| self.stats.raw().thread_row(t))
                .collect(),
            cm_rows: (0..self.cores)
                .map(|t| self.cm_stats.raw().thread_row(t))
                .collect(),
            cm_switch_log: self.cm_switch_log.lock().clone(),
            sizes: self.sizes.snapshot(),
            global_limbo: self.global_limbo.lock().clone(),
        }
    }

    /// Rewind host-side bookkeeping to a [`Stm::snapshot_host`] capture
    /// taken from this STM. Call only at quiescence.
    pub fn restore_host(&self, snap: &StmHostSnapshot) {
        assert_eq!(
            snap.stats_rows.len(),
            self.cores,
            "host snapshot taken from an STM with a different core count"
        );
        for (t, row) in snap.stats_rows.iter().enumerate() {
            for (s, v) in row.iter().enumerate() {
                self.stats.raw().set(t, s, *v);
            }
        }
        for (t, row) in snap.cm_rows.iter().enumerate() {
            for (s, v) in row.iter().enumerate() {
                self.cm_stats.raw().set(t, s, *v);
            }
        }
        *self.cm_switch_log.lock() = snap.cm_switch_log.clone();
        self.sizes.restore(&snap.sizes);
        *self.global_limbo.lock() = snap.global_limbo.clone();
    }
}

/// Frozen host-side STM bookkeeping from [`Stm::snapshot_host`]. Opaque:
/// only meaningful to [`Stm::restore_host`] on the same instance.
pub struct StmHostSnapshot {
    stats_rows: Vec<Vec<u64>>,
    cm_rows: Vec<Vec<u64>>,
    cm_switch_log: Vec<(usize, CmSwitch)>,
    sizes: Vec<table::SizeMap>,
    global_limbo: Vec<(u64, u64, Option<u64>)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_alloc::AllocatorKind;
    use tm_sim::MachineConfig;

    fn setup(shift: u32) -> (Sim, Stm) {
        let sim = Sim::new(MachineConfig::xeon_e5405());
        let alloc = AllocatorKind::TbbMalloc.build(&sim);
        let stm = Stm::new(
            &sim,
            alloc,
            StmConfig {
                shift,
                ..StmConfig::default()
            },
        );
        (sim, stm)
    }

    #[test]
    fn mapping_function_matches_paper() {
        let (_sim, stm) = setup(5);
        // 32 consecutive bytes share one lock.
        assert_eq!(stm.lock_addr_for(0x1000), stm.lock_addr_for(0x101f));
        assert_ne!(stm.lock_addr_for(0x1000), stm.lock_addr_for(0x1020));
        // The table covers 2^20 stripes of 32 bytes → wraps every 32 MB.
        let wrap = (1u64 << 20) << 5;
        assert_eq!(stm.lock_addr_for(0x1000), stm.lock_addr_for(0x1000 + wrap));
    }

    #[test]
    fn shift4_halves_the_stripe() {
        let (_sim, stm) = setup(4);
        assert_eq!(stm.stripe_bytes(), 16);
        assert_eq!(stm.lock_addr_for(0x1000), stm.lock_addr_for(0x100f));
        assert_ne!(stm.lock_addr_for(0x1000), stm.lock_addr_for(0x1010));
    }

    #[test]
    fn glibc_arena_aliasing_reproduces() {
        // The §5.2 anomaly: 64 MB-aligned arenas collapse onto the same ORT
        // entries under shift-and-modulo.
        let (_sim, stm) = setup(5);
        assert_eq!(
            stm.lock_addr_for(0x1800_0000),
            stm.lock_addr_for(0x1c00_0000),
            "blocks at the same offset of 64 MB-apart arenas must alias"
        );
    }

    #[test]
    fn single_thread_counter() {
        let (sim, stm) = setup(5);
        let addr = 0x5000_0000u64;
        sim.run(1, |ctx| {
            let mut th = stm.thread(0);
            for _ in 0..100 {
                stm.txn(ctx, &mut th, |tx, ctx| {
                    let v = tx.read(ctx, addr)?;
                    tx.write(ctx, addr, v + 1)
                });
            }
            stm.retire(th);
        });
        sim.with_state(|m| assert_eq!(m.read_u64(addr), 100));
        let s = stm.stats();
        assert_eq!(s.commits, 100);
        assert_eq!(s.aborts(), 0);
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let (sim, stm) = setup(5);
        let addr = 0x5000_0000u64;
        sim.run(8, |ctx| {
            let mut th = stm.thread(ctx.tid());
            for _ in 0..50 {
                stm.txn(ctx, &mut th, |tx, ctx| {
                    let v = tx.read(ctx, addr)?;
                    ctx.tick(20);
                    tx.write(ctx, addr, v + 1)
                });
            }
            stm.retire(th);
        });
        sim.with_state(|m| assert_eq!(m.read_u64(addr), 400));
        let s = stm.stats();
        assert_eq!(s.commits, 400);
        assert!(s.aborts() > 0, "8 threads on one counter must conflict");
    }

    #[test]
    fn disjoint_addresses_do_not_conflict() {
        let (sim, stm) = setup(5);
        sim.run(4, |ctx| {
            let addr = 0x6000_0000u64 + ctx.tid() as u64 * 4096; // distinct stripes
            let mut th = stm.thread(ctx.tid());
            for _ in 0..50 {
                stm.txn(ctx, &mut th, |tx, ctx| {
                    let v = tx.read(ctx, addr)?;
                    tx.write(ctx, addr, v + 1)
                });
            }
            stm.retire(th);
        });
        assert_eq!(stm.stats().aborts(), 0);
    }

    #[test]
    fn false_conflict_on_shared_stripe() {
        // Two addresses 16 bytes apart share a 32-byte stripe: writers
        // conflict even though the data is disjoint — the heart of Fig. 5.
        let (sim, stm) = setup(5);
        sim.run(2, |ctx| {
            let addr = 0x7000_0000u64 + ctx.tid() as u64 * 16;
            let mut th = stm.thread(ctx.tid());
            for _ in 0..50 {
                stm.txn(ctx, &mut th, |tx, ctx| {
                    let v = tx.read(ctx, addr)?;
                    ctx.tick(50);
                    tx.write(ctx, addr, v + 1)
                });
            }
            stm.retire(th);
        });
        assert!(
            stm.stats().aborts() > 0,
            "stripe-sharing writers must produce false aborts"
        );
        // With shift 4 the same addresses are on different stripes:
        let (sim2, stm2) = setup(4);
        sim2.run(2, |ctx| {
            let addr = 0x7000_0000u64 + ctx.tid() as u64 * 16;
            let mut th = stm2.thread(ctx.tid());
            for _ in 0..50 {
                stm2.txn(ctx, &mut th, |tx, ctx| {
                    let v = tx.read(ctx, addr)?;
                    ctx.tick(50);
                    tx.write(ctx, addr, v + 1)
                });
            }
            stm2.retire(th);
        });
        assert_eq!(stm2.stats().aborts(), 0);
    }

    #[test]
    fn atomicity_under_contention() {
        // Classic invariant test: transfer between two cells keeps the sum.
        let (sim, stm) = setup(5);
        let a = 0x8000_0000u64;
        let b = 0x8000_4000u64;
        sim.with_state(|m| {
            m.write_u64(a, 1000);
            m.write_u64(b, 1000);
        });
        sim.run(4, |ctx| {
            let mut th = stm.thread(ctx.tid());
            for i in 0..25u64 {
                let delta = (i % 7) + 1;
                stm.txn(ctx, &mut th, |tx, ctx| {
                    let va = tx.read(ctx, a)?;
                    let vb = tx.read(ctx, b)?;
                    tx.write(ctx, a, va - delta)?;
                    tx.write(ctx, b, vb + delta)
                });
            }
            stm.retire(th);
        });
        sim.with_state(|m| {
            assert_eq!(m.read_u64(a) + m.read_u64(b), 2000);
        });
    }

    #[test]
    fn read_own_write() {
        let (sim, stm) = setup(5);
        let addr = 0x9000_0000u64;
        sim.run(1, |ctx| {
            let mut th = stm.thread(0);
            stm.txn(ctx, &mut th, |tx, ctx| {
                tx.write(ctx, addr, 42)?;
                assert_eq!(tx.read(ctx, addr)?, 42, "must see own write");
                tx.write(ctx, addr, 43)?;
                assert_eq!(tx.read(ctx, addr)?, 43);
                Ok(())
            });
            stm.retire(th);
        });
        sim.with_state(|m| assert_eq!(m.read_u64(addr), 43));
    }

    #[test]
    fn host_snapshot_rewinds_stats_and_limbo() {
        let (sim, stm) = setup(5);
        let addr = 0xb000_0000u64;
        let work = |sim: &Sim, stm: &Stm| {
            sim.run(2, |ctx| {
                let mut th = stm.thread(ctx.tid());
                for _ in 0..20 {
                    stm.txn(ctx, &mut th, |tx, ctx| {
                        let v = tx.read(ctx, addr)?;
                        ctx.tick(30);
                        tx.write(ctx, addr, v + 1)
                    });
                }
                stm.retire(th);
            });
        };
        work(&sim, &stm);
        let machine = sim.snapshot(None);
        let host = stm.snapshot_host();
        let stats_at_snap = stm.stats();
        work(&sim, &stm);
        assert_eq!(stm.stats().commits, 80, "second run doubled the tally");
        sim.restore(&machine);
        stm.restore_host(&host);
        assert_eq!(stm.stats(), stats_at_snap);
        // Re-running from the restored state reproduces the doubled tally
        // bit-for-bit (stats shards, not just totals, were rewound).
        work(&sim, &stm);
        assert_eq!(stm.stats().commits, 80);
        sim.with_state(|m| assert_eq!(m.read_u64(addr), 80));
    }

    #[test]
    fn aborted_writes_are_invisible() {
        let (sim, stm) = setup(5);
        let addr = 0xa000_0000u64;
        sim.run(1, |ctx| {
            let mut th = stm.thread(0);
            let mut first = true;
            stm.txn(ctx, &mut th, |tx, ctx| {
                tx.write(ctx, addr, 99)?;
                if first {
                    first = false;
                    return Err(Abort::Explicit);
                }
                tx.write(ctx, addr, 7)
            });
            stm.retire(th);
        });
        sim.with_state(|m| assert_eq!(m.read_u64(addr), 7));
        assert_eq!(stm.stats().by_cause[AbortCause::Explicit as usize], 1);
    }
}
