//! Generation-stamped open-addressing tables for transaction descriptors.
//!
//! A transaction's write map and lock set are cleared on every `begin`,
//! thousands of times per second of simulated work. `HashMap::clear` walks
//! and drops every bucket, so with std collections `begin` is O(footprint
//! of the previous transaction). These tables instead stamp each slot with
//! the generation that wrote it: `clear` just increments the generation
//! counter, making `begin` O(1) regardless of how big the last transaction
//! was, while lookups stay one multiply + masked linear probe over flat
//! arrays (no per-entry boxing, no SipHash).
//!
//! The tables support exactly what the descriptors need — insert, lookup
//! and O(1) clear; deletion is unnecessary because entries only ever
//! accumulate within one transaction.

/// Open-addressed `u64 → u32` map with O(1) wholesale clearing.
pub(crate) struct GenTable {
    keys: Vec<u64>,
    vals: Vec<u32>,
    /// Slot is live iff `gens[i] == gen`.
    gens: Vec<u32>,
    gen: u32,
    mask: usize,
    len: usize,
}

#[inline]
fn hash(key: u64) -> usize {
    // Fibonacci multiply; high bits have the best diffusion.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize
}

impl GenTable {
    /// Capacity is rounded up to a power of two and kept under 50% load.
    pub(crate) fn new() -> Self {
        let cap = 128;
        GenTable {
            keys: vec![0; cap],
            vals: vec![0; cap],
            gens: vec![0; cap],
            gen: 1,
            mask: cap - 1,
            len: 0,
        }
    }

    /// Forget every entry. O(1): live slots are identified by generation.
    #[inline]
    pub(crate) fn clear(&mut self) {
        self.len = 0;
        self.gen = match self.gen.checked_add(1) {
            Some(g) => g,
            None => {
                // Generation wrapped (once per ~4 billion transactions):
                // reset all stamps so stale slots cannot alias as live.
                self.gens.fill(0);
                1
            }
        };
    }

    /// Value stored under `key` in the current generation, if any.
    #[inline]
    pub(crate) fn get(&self, key: u64) -> Option<u32> {
        let mut i = hash(key) & self.mask;
        loop {
            if self.gens[i] != self.gen {
                return None;
            }
            if self.keys[i] == key {
                return Some(self.vals[i]);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Whether `key` is present (set-style use with ignored values).
    #[inline]
    pub(crate) fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Insert `key → val`, overwriting any current-generation entry.
    pub(crate) fn insert(&mut self, key: u64, val: u32) {
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mut i = hash(key) & self.mask;
        loop {
            if self.gens[i] != self.gen {
                self.keys[i] = key;
                self.vals[i] = val;
                self.gens[i] = self.gen;
                self.len += 1;
                return;
            }
            if self.keys[i] == key {
                self.vals[i] = val;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_cap]);
        let old_gens = std::mem::replace(&mut self.gens, vec![0; new_cap]);
        let live_gen = self.gen;
        self.mask = new_cap - 1;
        self.gen = 1;
        self.len = 0;
        for i in 0..old_keys.len() {
            if old_gens[i] == live_gen {
                self.insert(old_keys[i], old_vals[i]);
            }
        }
    }
}

/// Sharded registry of live transactionally-allocated block sizes.
///
/// Only consulted when the §6.2 object cache is enabled (the cache needs a
/// block's size at free time); with the cache off, no STM path touches it.
/// Sharding by address hash keeps cross-thread malloc/free traffic off a
/// single global lock, and the multiply-xor hasher avoids paying SipHash
/// per block.
pub(crate) struct SizeRegistry {
    shards: Vec<parking_lot::Mutex<SizeMap>>,
}

pub(crate) type SizeMap =
    std::collections::HashMap<u64, u64, std::hash::BuildHasherDefault<AddrHasher>>;

const SHARDS: usize = 16;

/// Multiply-xor hasher for block addresses (same rationale as the cache
/// directory's hasher: u64 keys, no DoS exposure).
#[derive(Clone, Copy, Default)]
pub(crate) struct AddrHasher(u64);

impl std::hash::Hasher for AddrHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _: &[u8]) {
        unreachable!("size-registry keys hash via write_u64 only")
    }
    fn write_u64(&mut self, n: u64) {
        let x = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = x ^ (x >> 32);
    }
}

impl SizeRegistry {
    pub(crate) fn new() -> Self {
        SizeRegistry {
            shards: (0..SHARDS)
                .map(|_| parking_lot::Mutex::new(SizeMap::default()))
                .collect(),
        }
    }

    #[inline]
    fn shard(&self, addr: u64) -> &parking_lot::Mutex<SizeMap> {
        &self.shards[(addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize & (SHARDS - 1)]
    }

    #[inline]
    pub(crate) fn insert(&self, addr: u64, size: u64) {
        self.shard(addr).lock().insert(addr, size);
    }

    #[inline]
    pub(crate) fn remove(&self, addr: u64) {
        self.shard(addr).lock().remove(&addr);
    }

    #[inline]
    pub(crate) fn get(&self, addr: u64) -> Option<u64> {
        self.shard(addr).lock().get(&addr).copied()
    }

    /// Clone every shard's map (checkpoint support; call at quiescence).
    pub(crate) fn snapshot(&self) -> Vec<SizeMap> {
        self.shards.iter().map(|s| s.lock().clone()).collect()
    }

    /// Overwrite every shard from a [`SizeRegistry::snapshot`].
    pub(crate) fn restore(&self, snap: &[SizeMap]) {
        debug_assert_eq!(snap.len(), self.shards.len());
        for (s, m) in self.shards.iter().zip(snap) {
            *s.lock() = m.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_registry_round_trip() {
        let r = SizeRegistry::new();
        for a in 0..200u64 {
            r.insert(a * 16, a);
        }
        assert_eq!(r.get(32), Some(2));
        r.remove(32);
        assert_eq!(r.get(32), None);
        assert_eq!(r.get(48), Some(3));
    }

    #[test]
    fn insert_get_overwrite() {
        let mut t = GenTable::new();
        assert_eq!(t.get(42), None);
        t.insert(42, 1);
        t.insert(0, 2); // key 0 is an ordinary key, not a sentinel
        assert_eq!(t.get(42), Some(1));
        assert_eq!(t.get(0), Some(2));
        t.insert(42, 9);
        assert_eq!(t.get(42), Some(9));
    }

    #[test]
    fn clear_is_generation_bump() {
        let mut t = GenTable::new();
        for k in 0..50u64 {
            t.insert(k, k as u32);
        }
        t.clear();
        for k in 0..50u64 {
            assert_eq!(t.get(k), None, "entry {k} must not survive clear");
        }
        t.insert(7, 70);
        assert_eq!(t.get(7), Some(70));
        assert!(!t.contains(8));
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t = GenTable::new();
        for k in 0..10_000u64 {
            t.insert(k * 64, k as u32);
        }
        for k in 0..10_000u64 {
            assert_eq!(t.get(k * 64), Some(k as u32));
        }
        assert_eq!(t.get(10_000 * 64), None);
    }

    #[test]
    fn generation_wrap_resets_stamps() {
        let mut t = GenTable::new();
        t.insert(1, 1);
        t.gen = u32::MAX; // force the wrap path on next clear
        t.clear();
        assert_eq!(t.gen, 1);
        assert_eq!(t.get(1), None);
        t.insert(2, 2);
        assert_eq!(t.get(2), Some(2));
    }

    #[test]
    fn survives_many_clear_cycles() {
        let mut t = GenTable::new();
        for round in 0..1000u64 {
            t.insert(round, round as u32);
            t.insert(round + 1, 0);
            assert!(t.contains(round));
            t.clear();
            assert!(!t.contains(round));
        }
    }
}
