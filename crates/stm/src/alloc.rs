//! The STM-level dynamic-memory optimization of the paper's §6.2.
//!
//! Instead of freeing objects on abort (or at commit of a transactional
//! free), the STM keeps them in a thread-local pool for reuse by future
//! transactional allocations, avoiding calls into the system allocator and
//! their synchronization. Table 7 shows this only pays off for allocators
//! *without* their own thread-private caching (Glibc), which is exactly
//! what the reproduction demonstrates.

use std::collections::HashMap;

/// Thread-local pool of blocks keyed by requested size.
#[derive(Debug)]
pub struct ObjectCache {
    by_size: HashMap<u64, Vec<u64>>,
    total: usize,
    cap: usize,
}

impl Default for ObjectCache {
    fn default() -> Self {
        ObjectCache::with_capacity(4096)
    }
}

impl ObjectCache {
    /// Pool holding at most `cap` blocks in total.
    pub fn with_capacity(cap: usize) -> Self {
        ObjectCache {
            by_size: HashMap::new(),
            total: 0,
            cap,
        }
    }

    /// Take a cached block of exactly `size` bytes, if any.
    pub fn take(&mut self, size: u64) -> Option<u64> {
        let v = self.by_size.get_mut(&size)?;
        let a = v.pop();
        if a.is_some() {
            self.total -= 1;
        }
        a
    }

    /// Offer a block to the pool; returns false (caller must really free)
    /// when the pool is full.
    pub fn put(&mut self, size: u64, addr: u64) -> bool {
        if self.total >= self.cap {
            return false;
        }
        self.by_size.entry(size).or_default().push(addr);
        self.total += 1;
        true
    }

    /// Number of blocks currently pooled.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the pool holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_roundtrip() {
        let mut c = ObjectCache::with_capacity(4);
        assert_eq!(c.take(16), None);
        assert!(c.put(16, 0x1000));
        assert!(c.put(16, 0x2000));
        assert!(c.put(32, 0x3000));
        assert_eq!(c.len(), 3);
        assert_eq!(c.take(16), Some(0x2000));
        assert_eq!(c.take(32), Some(0x3000));
        assert_eq!(c.take(32), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut c = ObjectCache::with_capacity(2);
        assert!(c.put(16, 1));
        assert!(c.put(16, 2));
        assert!(!c.put(16, 3), "pool at capacity must reject");
        c.take(16);
        assert!(c.put(16, 3));
    }

    #[test]
    fn sizes_are_segregated() {
        let mut c = ObjectCache::default();
        c.put(16, 0xa);
        assert_eq!(c.take(48), None, "different size must not match");
        assert_eq!(c.take(16), Some(0xa));
    }
}
