//! The pluggable concurrency-control layer.
//!
//! Every study axis in this repo is a first-class dimension; this module
//! opens the last hardwired one — the TM algorithm itself. A
//! [`TmBackend`] turns the transaction life-cycle (begin / read / write /
//! commit / rollback) into a trait, with the shared machinery (descriptor
//! reset, redo/undo buffers, transactional malloc/free, limbo-based
//! reclamation, statistics) staying in [`TxThread`]. Three backends:
//!
//! * [`BackendKind::Etl`] — the paper's configuration: TinySTM-style
//!   word-based STM with a versioned-lock ownership table. The code here
//!   is the *verbatim* former `Tx` implementation (both ETL and CTL lock
//!   designs, write-back and write-through), moved behind the trait — the
//!   simulated event sequence is unchanged, so every ETL report stays
//!   byte-identical.
//! * [`BackendKind::Norec`] — NOrec (Dalessandro, Spear, Scott, PPoPP'10):
//!   a single global sequence lock and value-based validation. There is no
//!   ownership table, so the paper's mechanisms 1–2 (ORT aliasing and
//!   stripe false sharing) vanish by construction; diffing NOrec against
//!   ETL on the same workload isolates exactly those mechanisms.
//! * [`BackendKind::SimHtm`] — a TSX-like best-effort hardware TM built
//!   directly on the MESI model in `tm-sim` (the regime of Dice et al.,
//!   *The Influence of Malloc Placement on TSX Hardware Transactional
//!   Memory*, arXiv:1504.04640): conflict aborts ride the coherence
//!   protocol's invalidations, capacity aborts ride L1 evictions, and a
//!   single-lock serial-irrevocable fallback takes over after
//!   [`HTM_MAX_RETRIES`] attempts.

use tm_sim::{Ctx, HtmAbort};

use crate::stats::AbortCause;
use crate::tx::{Abort, TxThread};
use crate::{LockDesign, Stm, WriteMode};

/// Which concurrency-control backend executes transactions. This is the
/// `--backend` axis of `tmstudy`; [`BackendKind::Etl`] is the paper's
/// configuration and the default everywhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Ownership-table STM (TinySTM ETL write-back by default; the
    /// [`LockDesign`]/[`WriteMode`] knobs select its CTL and write-through
    /// variants).
    #[default]
    Etl,
    /// NOrec: value-based validation under one global sequence lock.
    Norec,
    /// Simulated best-effort HTM with a serial-irrevocable fallback.
    SimHtm,
}

impl BackendKind {
    /// All backends, in presentation order.
    pub const ALL: [BackendKind; 3] = [BackendKind::Etl, BackendKind::Norec, BackendKind::SimHtm];

    /// Stable lower-case CLI/report token.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Etl => "etl",
            BackendKind::Norec => "norec",
            BackendKind::SimHtm => "htm",
        }
    }

    /// Parse a CLI token (the inverse of [`BackendKind::name`]).
    pub fn parse(s: &str) -> Option<BackendKind> {
        BackendKind::ALL.into_iter().find(|b| b.name() == s)
    }

    /// Comma-separated list of valid tokens, for error messages.
    pub fn list() -> String {
        BackendKind::ALL
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// The backend singleton implementing this kind.
    pub(crate) fn backend(self) -> &'static dyn TmBackend {
        match self {
            BackendKind::Etl => &EtlBackend,
            BackendKind::Norec => &NorecBackend,
            BackendKind::SimHtm => &HtmBackend,
        }
    }
}

/// The backend contract. One call per transaction life-cycle edge; all
/// shared state lives in [`Stm`] (clock / sequence-lock word, ORT,
/// active-snapshot array) and [`TxThread`] (read/write sets, redo/undo
/// logs, tx-alloc buffers, statistics). The contract:
///
/// * `begin` resets the descriptor, takes the backend's snapshot and may
///   drain reclamation limbo. It must leave the thread able to `read`.
/// * `read`/`write` are the transactional data path. They must honor
///   read-own-write through the shared `wmap` redo index, count
///   `stats.reads`/`stats.writes`, and return `Err(Abort::Conflict(_))` to
///   trigger SUICIDE restart.
/// * `commit` returns false when commit-time validation fails (the caller
///   rolls back and retries). On success it must finalize transactional
///   memory (`TxThread::finalize_memory`), count `stats.commits` and mark
///   the thread quiescent.
/// * `rollback` undoes the attempt (release locks, restore pre-images,
///   undo tx-allocs), records the abort cause, and leaves the descriptor
///   ready for the next `begin`.
pub(crate) trait TmBackend: Sync {
    fn begin(&self, stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>);
    fn read(
        &self,
        stm: &Stm,
        th: &mut TxThread,
        ctx: &mut Ctx<'_>,
        addr: u64,
    ) -> Result<u64, Abort>;
    fn write(
        &self,
        stm: &Stm,
        th: &mut TxThread,
        ctx: &mut Ctx<'_>,
        addr: u64,
        val: u64,
    ) -> Result<(), Abort>;
    fn commit(&self, stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) -> bool;
    fn rollback(&self, stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>, cause: AbortCause);
}

// Devirtualized dispatch for the hot path. ETL is the paper's backend and
// the one the perf baselines track; a static call here lets the compiler
// inline the whole read/write path exactly as it did before the trait
// existed, while the other backends pay one indirect call. All call sites
// outside this module go through these helpers.

#[inline]
pub(crate) fn begin(stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) {
    match stm.cfg.backend {
        BackendKind::Etl => EtlBackend.begin(stm, th, ctx),
        _ => stm.backend.begin(stm, th, ctx),
    }
}

#[inline]
pub(crate) fn read(
    stm: &Stm,
    th: &mut TxThread,
    ctx: &mut Ctx<'_>,
    addr: u64,
) -> Result<u64, Abort> {
    match stm.cfg.backend {
        BackendKind::Etl => EtlBackend.read(stm, th, ctx, addr),
        _ => stm.backend.read(stm, th, ctx, addr),
    }
}

#[inline]
pub(crate) fn write(
    stm: &Stm,
    th: &mut TxThread,
    ctx: &mut Ctx<'_>,
    addr: u64,
    val: u64,
) -> Result<(), Abort> {
    match stm.cfg.backend {
        BackendKind::Etl => EtlBackend.write(stm, th, ctx, addr, val),
        _ => stm.backend.write(stm, th, ctx, addr, val),
    }
}

#[inline]
pub(crate) fn commit(stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) -> bool {
    match stm.cfg.backend {
        BackendKind::Etl => EtlBackend.commit(stm, th, ctx),
        _ => stm.backend.commit(stm, th, ctx),
    }
}

#[inline]
pub(crate) fn rollback(stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>, cause: AbortCause) {
    match stm.cfg.backend {
        BackendKind::Etl => EtlBackend.rollback(stm, th, ctx, cause),
        _ => stm.backend.rollback(stm, th, ctx, cause),
    }
}

// ---------------------------------------------------------------------------
// ETL/CTL: the ownership-table STM (the paper's TinySTM reimplementation).
//
// Versioned-lock word encoding (one 64-bit word per ORT entry):
// * bit 0 set — locked; bits 63..1 hold the owner's thread id;
// * bit 0 clear — free; bits 63..1 hold the stripe's commit timestamp.
// ---------------------------------------------------------------------------

#[inline]
pub(crate) fn locked_word(tid: usize) -> u64 {
    ((tid as u64) << 1) | 1
}

#[inline]
pub(crate) fn is_locked(word: u64) -> bool {
    word & 1 == 1
}

#[inline]
pub(crate) fn owner_of(word: u64) -> u64 {
    word >> 1
}

#[inline]
pub(crate) fn version_of(word: u64) -> u64 {
    word >> 1
}

/// The ownership-table backend (ETL by default; CTL and write-through via
/// [`StmConfig::design`]/[`StmConfig::write_mode`]).
///
/// [`StmConfig::design`]: crate::StmConfig::design
/// [`StmConfig::write_mode`]: crate::StmConfig::write_mode
pub(crate) struct EtlBackend;

impl EtlBackend {
    /// Validate the read set against the current lock words. Locks owned by
    /// this transaction validate trivially.
    fn validate(stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) -> bool {
        let _ = stm;
        for i in 0..th.read_set.len() {
            let (la, ver) = th.read_set[i];
            let l = ctx.read_u64(la);
            if is_locked(l) {
                if !th.lockset.contains(la) {
                    return false;
                }
            } else if version_of(l) != ver {
                return false;
            }
        }
        true
    }

    /// Timestamp extension: re-validate and move the snapshot forward.
    fn extend(stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) -> Result<(), Abort> {
        let now = ctx.read_u64(stm.clock_addr);
        if Self::validate(stm, th, ctx) {
            th.rv = now;
            th.stats.extensions += 1;
            Ok(())
        } else {
            Err(Abort::Conflict(AbortCause::Validation))
        }
    }

    /// CTL commit prelude: acquire every write-set stripe lock in one
    /// burst (TL2-style). Returns false (caller aborts) if any stripe is
    /// locked or was committed to after an unextendable snapshot.
    fn acquire_write_locks(stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) -> bool {
        for i in 0..th.write_entries.len() {
            let (addr, _) = th.write_entries[i];
            let la = stm.lock_addr_for(addr);
            if th.lockset.contains(la) {
                continue;
            }
            let l = ctx.read_u64(la);
            if is_locked(l)
                || version_of(l) > th.rv
                || ctx.cas_u64(la, l, locked_word(th.tid)).is_err()
            {
                return false;
            }
            th.locks_held.push((la, version_of(l)));
            th.lockset.insert(la, 0);
        }
        true
    }
}

impl TmBackend for EtlBackend {
    fn begin(&self, stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) {
        th.reset(ctx);
        // Publish a (conservative) snapshot *before* taking the real one:
        // a reclamation scan that misses the publication can then only
        // free blocks whose unlink already predates the second clock read,
        // so no reachable block is ever recycled under our feet.
        let announce = ctx.read_u64(stm.clock_addr);
        ctx.write_u64(stm.active_addr(th.tid), announce + 1);
        th.rv = ctx.read_u64(stm.clock_addr);
        th.drain_limbo(stm, ctx);
    }

    fn read(
        &self,
        stm: &Stm,
        th: &mut TxThread,
        ctx: &mut Ctx<'_>,
        addr: u64,
    ) -> Result<u64, Abort> {
        th.stats.reads += 1;
        ctx.tick(4);
        if let Some(i) = th.wmap.get(addr) {
            return Ok(th.write_entries[i as usize].1); // read-own-write
        }
        let la = stm.lock_addr_for(addr);
        let l = ctx.read_u64(la);
        if is_locked(l) {
            if owner_of(l) == th.tid as u64 {
                // We own the stripe (wrote a *different* word in it); the
                // word itself is unmodified in memory (write-back).
                return Ok(ctx.read_u64(addr));
            }
            return Err(Abort::Conflict(AbortCause::ReadLocked));
        }
        let (v, l2) = ctx.read_u64_pair(addr, la);
        if l2 != l {
            return Err(Abort::Conflict(AbortCause::ReadRace));
        }
        let ver = version_of(l);
        if ver > th.rv && stm.cfg.bug != crate::InjectedBug::SkipReadValidation {
            Self::extend(stm, th, ctx)?;
        }
        th.read_set.push((la, ver));
        Ok(v)
    }

    fn write(
        &self,
        stm: &Stm,
        th: &mut TxThread,
        ctx: &mut Ctx<'_>,
        addr: u64,
        val: u64,
    ) -> Result<(), Abort> {
        th.stats.writes += 1;
        ctx.tick(4);
        if let Some(i) = th.wmap.get(addr) {
            th.write_entries[i as usize].1 = val;
            return Ok(());
        }
        if stm.cfg.design == LockDesign::Etl {
            let la = stm.lock_addr_for(addr);
            if !th.lockset.contains(la) {
                let l = ctx.read_u64(la);
                if is_locked(l) {
                    // Cannot be us: our locks are all in `lockset`.
                    return Err(Abort::Conflict(AbortCause::WriteLocked));
                }
                // The stripe may have been committed to after our snapshot —
                // possibly by a transaction that invalidated something we
                // already read. Extend (re-validating the read set) before
                // taking ownership, or this transaction could commit stale
                // reads and lose updates.
                if version_of(l) > th.rv && stm.cfg.bug != crate::InjectedBug::SkipWriteValidation {
                    Self::extend(stm, th, ctx)?;
                }
                if ctx.cas_u64(la, l, locked_word(th.tid)).is_err() {
                    return Err(Abort::Conflict(AbortCause::WriteLocked));
                }
                th.locks_held.push((la, version_of(l)));
                th.lockset.insert(la, 0);
            }
            if stm.cfg.write_mode == WriteMode::Through {
                // Write-through: memory is updated in place under the
                // stripe lock; the pre-image goes to the undo log.
                let old = ctx.read_u64(addr);
                th.undo.push((addr, old));
                ctx.write_u64(addr, val);
                return Ok(());
            }
        }
        th.wmap.insert(addr, th.write_entries.len() as u32);
        th.write_entries.push((addr, val));
        Ok(())
    }

    fn commit(&self, stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) -> bool {
        ctx.tick(12);
        if stm.cfg.design == LockDesign::Ctl
            && !th.write_entries.is_empty()
            && !Self::acquire_write_locks(stm, th, ctx)
        {
            return false;
        }
        if th.locks_held.is_empty() {
            debug_assert!(th.undo.is_empty());
            // Read-only (or empty) transaction: the snapshot was consistent
            // throughout; commit without touching the clock.
            let ts = if th.tx_frees.is_empty() {
                0
            } else {
                ctx.read_u64(stm.clock_addr)
            };
            th.finalize_memory(stm, ts);
            th.stats.commits += 1;
            th.clear_active(stm, ctx);
            return true;
        }
        let wv = ctx.fetch_add_u64(stm.clock_addr, 1) + 1;
        if th.rv + 1 != wv && !Self::validate(stm, th, ctx) {
            return false;
        }
        // Write back the redo log (a no-op under write-through, where
        // memory already holds the new values), then release locks with
        // the new version.
        for i in 0..th.write_entries.len() {
            let (addr, val) = th.write_entries[i];
            ctx.write_u64(addr, val);
        }
        th.undo.clear();
        for i in 0..th.locks_held.len() {
            let (la, _) = th.locks_held[i];
            ctx.write_u64(la, wv << 1);
        }
        th.finalize_memory(stm, wv);
        th.stats.commits += 1;
        th.clear_active(stm, ctx);
        true
    }

    fn rollback(&self, stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>, cause: AbortCause) {
        th.rollback_common(stm, ctx, cause);
    }
}

// ---------------------------------------------------------------------------
// NOrec: no ownership records — one global sequence lock, value-based
// validation (Dalessandro, Spear, Scott, PPoPP'10).
//
// The `Stm`'s clock word doubles as the sequence lock: even = stable,
// odd = a writer is committing. Reads log (address, value) pairs; whenever
// the sequence number moves, the whole read set is re-read and compared
// by value. A committing writer CASes the lock odd, writes back its redo
// log, and releases at `seq + 2`.
// ---------------------------------------------------------------------------

/// The NOrec backend. Reuses `TxThread::read_set` to hold (address, value)
/// pairs instead of (lock, version) pairs.
pub(crate) struct NorecBackend;

impl NorecBackend {
    /// Spin (in virtual time) until the sequence lock is even, then return
    /// it. Each probe is one simulated read; waiting burns virtual cycles
    /// exactly like a real seqlock reader would.
    fn stable_seq(stm: &Stm, ctx: &mut Ctx<'_>) -> u64 {
        loop {
            let s = ctx.read_u64(stm.clock_addr);
            if s & 1 == 0 {
                return s;
            }
            ctx.tick(16); // writer in progress: brief pause before re-probe
        }
    }

    /// Value-based validation: wait for a stable sequence number, re-read
    /// every logged location and compare by value, then confirm the
    /// sequence did not move while we validated. On success the snapshot
    /// advances to the validated sequence number.
    fn validate(stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) -> Result<u64, Abort> {
        loop {
            let s1 = Self::stable_seq(stm, ctx);
            for i in 0..th.read_set.len() {
                let (addr, val) = th.read_set[i];
                ctx.tick(2);
                if ctx.read_u64(addr) != val {
                    return Err(Abort::Conflict(AbortCause::Validation));
                }
            }
            let s2 = ctx.read_u64(stm.clock_addr);
            if s1 == s2 {
                if s1 != th.rv {
                    th.stats.extensions += 1;
                }
                th.rv = s1;
                return Ok(s1);
            }
            // A writer slipped in mid-validation; start over.
        }
    }
}

impl TmBackend for NorecBackend {
    fn begin(&self, stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) {
        th.reset(ctx);
        // Same epoch-reclamation protocol as ETL: announce a conservative
        // snapshot before taking the real one, so the limbo drain of a
        // concurrent thread can never free a block this transaction may
        // still reach.
        let announce = ctx.read_u64(stm.clock_addr);
        ctx.write_u64(stm.active_addr(th.tid), announce + 1);
        th.rv = Self::stable_seq(stm, ctx);
        th.drain_limbo(stm, ctx);
    }

    fn read(
        &self,
        stm: &Stm,
        th: &mut TxThread,
        ctx: &mut Ctx<'_>,
        addr: u64,
    ) -> Result<u64, Abort> {
        th.stats.reads += 1;
        ctx.tick(4);
        if let Some(i) = th.wmap.get(addr) {
            return Ok(th.write_entries[i as usize].1); // read-own-write
        }
        // Data load + sequence-lock probe in one scheduling slot (the same
        // collapsed pair the ETL read path uses for its lock recheck).
        let (mut v, mut s) = ctx.read_u64_pair(addr, stm.clock_addr);
        while s != th.rv {
            // The clock moved (or a writer holds it): value-validate the
            // read set at a newer stable sequence, then retry the load.
            Self::validate(stm, th, ctx)?;
            let (v2, s2) = ctx.read_u64_pair(addr, stm.clock_addr);
            v = v2;
            s = s2;
        }
        th.read_set.push((addr, v));
        Ok(v)
    }

    fn write(
        &self,
        stm: &Stm,
        th: &mut TxThread,
        ctx: &mut Ctx<'_>,
        addr: u64,
        val: u64,
    ) -> Result<(), Abort> {
        let _ = stm;
        th.stats.writes += 1;
        ctx.tick(4);
        if let Some(i) = th.wmap.get(addr) {
            th.write_entries[i as usize].1 = val;
            return Ok(());
        }
        th.wmap.insert(addr, th.write_entries.len() as u32);
        th.write_entries.push((addr, val));
        Ok(())
    }

    fn commit(&self, stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) -> bool {
        ctx.tick(12);
        if th.write_entries.is_empty() {
            // Read-only: the read set was value-validated against a stable
            // sequence number, so the snapshot is consistent as-is.
            let ts = if th.tx_frees.is_empty() {
                0
            } else {
                ctx.read_u64(stm.clock_addr)
            };
            th.finalize_memory(stm, ts);
            th.stats.commits += 1;
            th.clear_active(stm, ctx);
            return true;
        }
        // Acquire the sequence lock at our snapshot (even → odd). A CAS
        // failure means the clock moved: re-validate by value and retry
        // from the new snapshot — NOrec aborts only on a value change,
        // never on mere clock motion.
        while ctx.cas_u64(stm.clock_addr, th.rv, th.rv + 1).is_err() {
            if stm.cfg.bug == crate::InjectedBug::NorecStaleSnapshot {
                // BUG (injected): refresh the snapshot without value-
                // validating the read set, trusting reads the lost race may
                // already have invalidated.
                th.rv = Self::stable_seq(stm, ctx);
                continue;
            }
            if NorecBackend::validate(stm, th, ctx).is_err() {
                return false;
            }
        }
        for i in 0..th.write_entries.len() {
            let (addr, val) = th.write_entries[i];
            ctx.write_u64(addr, val);
        }
        let wv = th.rv + 2;
        ctx.write_u64(stm.clock_addr, wv); // release: odd → next even
        th.undo.clear();
        th.finalize_memory(stm, wv);
        th.stats.commits += 1;
        th.clear_active(stm, ctx);
        true
    }

    fn rollback(&self, stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>, cause: AbortCause) {
        th.rollback_common(stm, ctx, cause);
    }
}

// ---------------------------------------------------------------------------
// Sim-HTM: best-effort hardware TM on the MESI model (Dice et al.,
// arXiv:1504.04640). The cache hierarchy tracks the transactional
// read/write line sets; coherence invalidations of tracked lines doom the
// transaction (conflict), L1 evictions of tracked lines doom it
// (capacity). Writes are buffered host-side and applied in one atomic
// commit event — the tags-only cache model means speculative stores are
// naturally invisible until then. The global clock word doubles as the
// serial-irrevocable fallback lock, subscribed inside every hardware
// attempt so a fallback writer aborts all concurrent hardware
// transactions.
// ---------------------------------------------------------------------------

/// Hardware attempts before falling back to the serial-irrevocable lock
/// (TSX retry policies typically give up after a handful of tries).
pub(crate) const HTM_MAX_RETRIES: u32 = 8;

/// The simulated-HTM backend.
pub(crate) struct HtmBackend;

impl HtmBackend {
    fn cause_of(a: HtmAbort) -> AbortCause {
        match a {
            HtmAbort::Conflict => AbortCause::Coherence,
            HtmAbort::Capacity => AbortCause::Capacity,
        }
    }

    /// Map a doom notice to the abort that restarts the transaction.
    fn doomed(a: HtmAbort) -> Abort {
        Abort::Conflict(Self::cause_of(a))
    }
}

impl TmBackend for HtmBackend {
    fn begin(&self, stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) {
        th.reset(ctx);
        // Hardware transactions publish no epoch snapshot (there is no
        // STM-side reclamation race: any write to a line a reader tracked
        // dooms the reader), so limbo blocks are freed unconditionally.
        th.drain_limbo_all(stm, ctx);
        if th.retries >= HTM_MAX_RETRIES {
            // Serial-irrevocable fallback: take the global lock (even →
            // odd) and run non-speculatively. Writes stay buffered so an
            // explicit workload restart can still roll back.
            loop {
                let s = ctx.read_u64(stm.clock_addr);
                if s & 1 == 0 && ctx.cas_u64(stm.clock_addr, s, s + 1).is_ok() {
                    th.rv = s;
                    th.htm_irrevocable = true;
                    return;
                }
                ctx.tick(64); // lock held: wait out the serial section
            }
        }
        th.htm_irrevocable = false;
        // Wait until the fallback lock looks free before starting (a
        // transaction begun under a held lock would only abort at the
        // subscription check below).
        loop {
            let s = ctx.read_u64(stm.clock_addr);
            if s & 1 == 0 {
                th.rv = s;
                break;
            }
            ctx.tick(64);
        }
        ctx.tick(30); // xbegin: checkpoint registers
        ctx.htm_begin();
        // Subscribe to the fallback lock: the read puts its line in the
        // hardware read set, so a fallback writer's CAS dooms us.
        if let Ok(s) = ctx.htm_read_u64(stm.clock_addr) {
            if s & 1 == 1 {
                // Lost the race: a fallback writer got in between the
                // probe and the subscription.
                th.htm_doom = Some(HtmAbort::Conflict);
            }
        } else {
            th.htm_doom = Some(HtmAbort::Conflict);
        }
    }

    fn read(
        &self,
        stm: &Stm,
        th: &mut TxThread,
        ctx: &mut Ctx<'_>,
        addr: u64,
    ) -> Result<u64, Abort> {
        let _ = stm;
        th.stats.reads += 1;
        ctx.tick(2); // no per-access instrumentation beyond the cache itself
        if let Some(i) = th.wmap.get(addr) {
            return Ok(th.write_entries[i as usize].1); // read-own-write
        }
        if th.htm_irrevocable {
            return Ok(ctx.read_u64(addr));
        }
        if let Some(d) = th.htm_doom {
            return Err(Self::doomed(d));
        }
        match ctx.htm_read_u64(addr) {
            Ok(v) => Ok(v),
            Err(d) => {
                th.htm_doom = Some(d);
                Err(Self::doomed(d))
            }
        }
    }

    fn write(
        &self,
        stm: &Stm,
        th: &mut TxThread,
        ctx: &mut Ctx<'_>,
        addr: u64,
        val: u64,
    ) -> Result<(), Abort> {
        let _ = stm;
        th.stats.writes += 1;
        ctx.tick(2);
        if let Some(i) = th.wmap.get(addr) {
            th.write_entries[i as usize].1 = val;
            return Ok(());
        }
        if !th.htm_irrevocable {
            if let Some(d) = th.htm_doom {
                return Err(Self::doomed(d));
            }
            // Claim the line for the hardware write set (exclusive
            // ownership now; the data lands at commit).
            if let Err(d) = ctx.htm_write_mark(addr) {
                th.htm_doom = Some(d);
                return Err(Self::doomed(d));
            }
        }
        th.wmap.insert(addr, th.write_entries.len() as u32);
        th.write_entries.push((addr, val));
        Ok(())
    }

    fn commit(&self, stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) -> bool {
        if th.htm_irrevocable {
            ctx.tick(12);
            for i in 0..th.write_entries.len() {
                let (addr, val) = th.write_entries[i];
                ctx.write_u64(addr, val);
            }
            let wv = th.rv + 2;
            ctx.write_u64(stm.clock_addr, wv); // release the fallback lock
            th.htm_irrevocable = false;
            th.finalize_memory(stm, wv);
            th.stats.commits += 1;
            return true;
        }
        ctx.tick(10); // xend
        if th.htm_doom.is_some() {
            return false;
        }
        match ctx.htm_commit(&th.write_entries) {
            Ok(()) => {
                th.finalize_memory(stm, 0);
                th.stats.commits += 1;
                true
            }
            Err(d) => {
                th.htm_doom = Some(d);
                false
            }
        }
    }

    fn rollback(&self, stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>, cause: AbortCause) {
        // Tear down hardware tracking (no-op if the attempt already ended
        // or never started), release the fallback lock if held, then the
        // shared descriptor rollback. A commit-time doom is recorded under
        // its hardware cause rather than the generic validation label.
        let hw = ctx.htm_abort();
        if th.htm_irrevocable {
            ctx.write_u64(stm.clock_addr, th.rv + 2);
            th.htm_irrevocable = false;
        }
        let cause = match th.htm_doom.take() {
            Some(d) if cause == AbortCause::Validation => Self::cause_of(d),
            _ => match hw {
                Some(d) if cause == AbortCause::Validation => Self::cause_of(d),
                _ => cause,
            },
        };
        ctx.tick(20); // abort: restore checkpoint
        th.rollback_common(stm, ctx, cause);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_word_encoding() {
        assert!(is_locked(locked_word(3)));
        assert_eq!(owner_of(locked_word(3)), 3);
        assert!(!is_locked(7 << 1));
        assert_eq!(version_of(7 << 1), 7);
        assert_eq!(version_of(0), 0);
        assert!(!is_locked(0));
    }

    #[test]
    fn kind_tokens_round_trip() {
        for k in BackendKind::ALL {
            assert_eq!(BackendKind::parse(k.name()), Some(k));
        }
        assert_eq!(BackendKind::parse("tl2"), None);
        assert_eq!(BackendKind::list(), "etl, norec, htm");
        assert_eq!(BackendKind::default(), BackendKind::Etl);
    }

    use crate::{Stm, StmConfig};
    use tm_alloc::AllocatorKind;
    use tm_sim::{MachineConfig, Sim};

    fn setup(backend: BackendKind) -> (Sim, Stm) {
        let sim = Sim::new(MachineConfig::xeon_e5405());
        let alloc = AllocatorKind::TbbMalloc.build(&sim);
        let stm = Stm::new(
            &sim,
            alloc,
            StmConfig {
                backend,
                ..StmConfig::default()
            },
        );
        (sim, stm)
    }

    fn run_counter(backend: BackendKind, threads: usize, iters: u64) -> crate::StmStats {
        let (sim, stm) = setup(backend);
        let addr = 0x5000_0000u64;
        sim.run(threads, |ctx| {
            let mut th = stm.thread(ctx.tid());
            for _ in 0..iters {
                stm.txn(ctx, &mut th, |tx, ctx| {
                    let v = tx.read(ctx, addr)?;
                    ctx.tick(20);
                    tx.write(ctx, addr, v + 1)
                });
            }
            stm.retire(th);
        });
        let total = threads as u64 * iters;
        sim.with_state(|m| assert_eq!(m.read_u64(addr), total));
        let s = stm.stats();
        assert_eq!(s.commits, total);
        s
    }

    #[test]
    fn norec_counter_is_exact() {
        run_counter(BackendKind::Norec, 1, 100);
        let s = run_counter(BackendKind::Norec, 8, 50);
        assert!(s.aborts() > 0, "8 threads on one counter must conflict");
    }

    #[test]
    fn htm_counter_is_exact() {
        run_counter(BackendKind::SimHtm, 1, 100);
        let s = run_counter(BackendKind::SimHtm, 8, 50);
        assert!(s.aborts() > 0, "8 threads on one counter must conflict");
        assert!(
            s.by_cause[AbortCause::Coherence as usize] > 0,
            "contended counter aborts must be coherence conflicts"
        );
    }

    #[test]
    fn norec_has_no_stripe_false_conflicts() {
        // Two addresses 16 bytes apart share a 32-byte ORT stripe: ETL
        // writers false-conflict (the heart of the paper's Fig. 5), but
        // NOrec validates by *value* and has no ORT — the mechanism
        // vanishes by construction.
        for (backend, expect_aborts) in [(BackendKind::Etl, true), (BackendKind::Norec, false)] {
            let (sim, stm) = setup(backend);
            sim.run(2, |ctx| {
                let addr = 0x7000_0000u64 + ctx.tid() as u64 * 16;
                let mut th = stm.thread(ctx.tid());
                for _ in 0..50 {
                    stm.txn(ctx, &mut th, |tx, ctx| {
                        let v = tx.read(ctx, addr)?;
                        ctx.tick(50);
                        tx.write(ctx, addr, v + 1)
                    });
                }
                stm.retire(th);
            });
            let s = stm.stats();
            assert_eq!(s.commits, 100);
            if expect_aborts {
                assert!(s.aborts() > 0, "ETL must false-conflict on the stripe");
            } else {
                assert_eq!(s.aborts(), 0, "NOrec has no ORT to false-conflict in");
            }
        }
    }

    #[test]
    fn htm_capacity_cliff() {
        // One thread touches far more lines than the 32 KB L1 holds inside
        // a single transaction: the hardware read set overflows, every
        // attempt dooms with Capacity, and the transaction only completes
        // via the serial-irrevocable fallback.
        let (sim, stm) = setup(BackendKind::SimHtm);
        sim.run(1, |ctx| {
            let mut th = stm.thread(0);
            stm.txn(ctx, &mut th, |tx, ctx| {
                for i in 0..1024u64 {
                    tx.write(ctx, 0x6000_0000 + i * 64, i)?;
                }
                Ok(0)
            });
            stm.retire(th);
        });
        let s = stm.stats();
        assert_eq!(s.commits, 1);
        assert_eq!(
            s.by_cause[AbortCause::Capacity as usize],
            u64::from(super::HTM_MAX_RETRIES),
            "every hardware attempt must overflow before the fallback runs"
        );
        sim.with_state(|m| assert_eq!(m.read_u64(0x6000_0000 + 63 * 64), 63));
    }

    #[test]
    fn htm_tx_alloc_joins_footprint() {
        // Allocator metadata touched inside a hardware transaction joins
        // the transactional footprint (the Dice et al. effect): the
        // transaction still commits, and memory allocated transactionally
        // is usable after commit.
        let (sim, stm) = setup(BackendKind::SimHtm);
        sim.run(2, |ctx| {
            let mut th = stm.thread(ctx.tid());
            for i in 0..20u64 {
                let slot = 0x7100_0000u64 + ctx.tid() as u64 * 64;
                stm.txn(ctx, &mut th, |tx, ctx| {
                    let p = tx.malloc(ctx, 48);
                    tx.write(ctx, p, i)?;
                    let old = tx.read(ctx, slot)?;
                    if old != 0 {
                        tx.free(ctx, old);
                    }
                    tx.write(ctx, slot, p)
                });
            }
            stm.retire(th);
        });
        assert_eq!(stm.stats().commits, 40);
        assert_eq!(stm.stats().tx_mallocs, 40);
    }
}
