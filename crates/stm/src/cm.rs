//! Contention management: the policy deciding how a transaction reacts to
//! its own abort, made pluggable the same way [`crate::backend`] made the
//! concurrency-control protocol pluggable.
//!
//! The paper fixes TinySTM's contention manager to SUICIDE (abort self,
//! restart immediately) for every experiment, so all of its
//! allocator-induced pathologies are measured under exactly one reaction
//! policy. This module reproduces the classical alternatives surveyed by
//! Pasqualin et al. (arXiv:2206.01359) on top of the shared restart loop in
//! [`Stm::txn`](crate::Stm::txn):
//!
//! * [`CmKind::Suicide`] — restart with the deterministic randomized
//!   bounded-exponential pause the simulator has always used (the default;
//!   byte-identical to the pre-CM behaviour).
//! * [`CmKind::BackoffExp`] — the same randomized pause with an 8× wider
//!   base window and a deeper exponent cap; trades latency for a sharply
//!   lower reconflict probability.
//! * [`CmKind::Karma`] — priority accrues with the work a transaction has
//!   invested (its read+write footprint, accumulated across aborted
//!   attempts); high-karma transactions retry almost immediately, low-karma
//!   ones yield.
//! * [`CmKind::Timestamp`] — seniority by virtual-time age: the longer a
//!   transaction has been trying (since its first attempt), the shorter its
//!   pause, so old transactions eventually win over young ones.
//! * [`CmKind::Serialize`] — after a few consecutive aborts the transaction
//!   grabs a global serialization token (a CAS word in *simulated* memory)
//!   and holds it until commit, mimicking the serial-irrevocable escape
//!   hatch that dominates HTM policy outcomes in Dice et al.
//!   (arXiv:1504.04640).
//! * [`CmKind::Adaptive`] — a per-thread controller that watches abort-rate
//!   windows and walks the escalation ladder Suicide → BackoffExp → Karma →
//!   Serialize (and back down when contention subsides). All of its inputs
//!   are per-thread deterministic quantities (own stats deltas, virtual
//!   time), so its switch points are bit-identical across runs and across
//!   the fibers/threads executors.
//!
//! Dispatch mirrors `backend.rs`: the free functions below are called from
//! the transaction retry loop and fast-path [`CmKind::Suicide`] with *zero*
//! extra simulated events or host-side bookkeeping, so every artifact
//! produced under the default configuration stays byte-identical.

use tm_sim::Ctx;

use crate::stats::{AbortCause, StmStats};
use crate::tx::TxThread;
use crate::Stm;

/// Which contention-management policy reacts to aborts (see the module
/// docs for the policy zoo). Selected by
/// [`StmConfig::cm`](crate::StmConfig::cm); the CLI token is `--cm`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CmKind {
    /// TinySTM's SUICIDE: restart with the deterministic randomized
    /// bounded-exponential pause (the paper's configuration, the default).
    #[default]
    Suicide = 0,
    /// Wider randomized exponential backoff (8× base window, deeper cap).
    BackoffExp = 1,
    /// Footprint-accrued priority: invested work shortens the pause.
    Karma = 2,
    /// Virtual-time seniority: transaction age shortens the pause.
    Timestamp = 3,
    /// Global serialization token after repeated aborts.
    Serialize = 4,
    /// Per-thread adaptive controller over the static policies above.
    Adaptive = 5,
}

impl CmKind {
    /// Number of variants (sizes the per-policy stat arrays).
    pub const COUNT: usize = 6;

    /// All variants, in escalation order (`Adaptive` last).
    pub const ALL: [CmKind; CmKind::COUNT] = [
        CmKind::Suicide,
        CmKind::BackoffExp,
        CmKind::Karma,
        CmKind::Timestamp,
        CmKind::Serialize,
        CmKind::Adaptive,
    ];

    /// The static (non-adaptive) policies, in escalation order.
    pub const STATIC: [CmKind; 5] = [
        CmKind::Suicide,
        CmKind::BackoffExp,
        CmKind::Karma,
        CmKind::Timestamp,
        CmKind::Serialize,
    ];

    /// Stable lower-case CLI/report token.
    pub fn name(self) -> &'static str {
        match self {
            CmKind::Suicide => "suicide",
            CmKind::BackoffExp => "backoff",
            CmKind::Karma => "karma",
            CmKind::Timestamp => "timestamp",
            CmKind::Serialize => "serialize",
            CmKind::Adaptive => "adaptive",
        }
    }

    /// Parse a CLI token (the inverse of [`CmKind::name`]).
    pub fn parse(s: &str) -> Option<CmKind> {
        CmKind::ALL.iter().copied().find(|k| k.name() == s)
    }

    /// Comma-separated list of every valid token, for error messages.
    pub fn list() -> String {
        CmKind::ALL
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// How many consecutive [`AbortCause::AllocFailed`] aborts the policy
    /// absorbs before [`Stm::try_txn`](crate::Stm::try_txn) stops retrying
    /// and propagates the allocator's error to the caller. Patient
    /// policies (wide backoff, the adaptive controller) wait longer for a
    /// transient exhaustion to clear — another transaction's commit or
    /// quiescent reclamation may free memory between attempts — while
    /// immediate-restart policies give up quickly: retrying without a
    /// pause cannot change the allocator's answer.
    pub fn alloc_retry_budget(self) -> u32 {
        match self {
            CmKind::Suicide | CmKind::Serialize => 2,
            CmKind::Karma | CmKind::Timestamp => 4,
            CmKind::BackoffExp | CmKind::Adaptive => 8,
        }
    }

    /// Whether this configuration can reach [`CmKind::Serialize`] and thus
    /// needs the global token word allocated in simulated memory.
    pub(crate) fn needs_token(self) -> bool {
        matches!(self, CmKind::Serialize | CmKind::Adaptive)
    }

    /// The policy the thread starts under (`Adaptive` starts at the bottom
    /// of the escalation ladder).
    pub(crate) fn initial_policy(self) -> CmKind {
        match self {
            CmKind::Adaptive => CmKind::Suicide,
            k => k,
        }
    }

    /// The resolved dispatch table entry (mirrors
    /// [`BackendKind::backend`](crate::BackendKind)).
    pub(crate) fn manager(self) -> &'static dyn ContentionManager {
        match self {
            CmKind::Suicide => &SuicideCm,
            CmKind::BackoffExp => &BackoffExpCm,
            CmKind::Karma => &KarmaCm,
            CmKind::Timestamp => &TimestampCm,
            CmKind::Serialize => &SerializeCm,
            CmKind::Adaptive => &AdaptiveCm,
        }
    }
}

/// One policy switch taken by the adaptive controller, recorded per thread
/// so determinism tests can compare switch points bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CmSwitch {
    /// Index of the abort-rate window whose boundary triggered the switch.
    pub window: u32,
    /// Virtual time of the committing/aborting event that closed the
    /// window.
    pub at: u64,
    /// Policy before the switch.
    pub from: CmKind,
    /// Policy after the switch.
    pub to: CmKind,
}

/// Contention-management statistics: which policy each transaction attempt
/// retired under, plus the adaptive controller's activity. Kept separate
/// from [`StmStats`] (whose slot layout is frozen into every committed
/// report) and all-zero — and therefore unemitted — under the default
/// [`CmKind::Suicide`] configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CmStats {
    /// Commits indexed by the policy active when the attempt committed.
    pub commits_under: [u64; CmKind::COUNT],
    /// Aborts indexed by the policy active when the attempt aborted.
    pub aborts_under: [u64; CmKind::COUNT],
    /// Policy switches taken by the adaptive controller.
    pub switches: u64,
    /// Adaptive windows whose aborts were dominated by ownership-table
    /// causes (read/write-locked, read-race) — the aliasing signature for
    /// which a NOrec backend (no ORT) would be the better fit. Surfaced as
    /// a recommendation; the controller does not switch backends mid-run,
    /// since ETL and NOrec metadata cannot coexist on live data.
    pub norec_hints: u64,
}

impl CmStats {
    /// Total attempts (commits + aborts) across every policy.
    pub fn attempts(&self) -> u64 {
        self.commits_under.iter().sum::<u64>() + self.aborts_under.iter().sum::<u64>()
    }

    /// The policy with the most commits (ties resolve to the first in
    /// escalation order) — "where the controller converged".
    pub fn dominant_policy(&self) -> CmKind {
        let mut best = CmKind::Suicide;
        let mut best_n = 0u64;
        for k in CmKind::ALL {
            let n = self.commits_under[k as usize];
            if n > best_n {
                best = k;
                best_n = n;
            }
        }
        best
    }

    /// Accumulate another thread's tally (all counters are additive).
    pub fn merge(&mut self, o: &CmStats) {
        for i in 0..CmKind::COUNT {
            self.commits_under[i] += o.commits_under[i];
            self.aborts_under[i] += o.aborts_under[i];
        }
        self.switches += o.switches;
        self.norec_hints += o.norec_hints;
    }

    /// Report section with every counter, for `RunReport` emission.
    pub fn section(&self) -> tm_obs::Section {
        tm_obs::Section::from_schema(self)
    }
}

// Same sharded-merge contract as `StmStats`: retired threads' tallies land
// in per-thread shards and merge slot-wise.
impl tm_obs::SlotSchema for CmStats {
    const WIDTH: usize = 2 * CmKind::COUNT + 2;

    fn slot_names() -> &'static [&'static str] {
        &[
            "cm_commits_suicide",
            "cm_commits_backoff",
            "cm_commits_karma",
            "cm_commits_timestamp",
            "cm_commits_serialize",
            "cm_commits_adaptive",
            "cm_aborts_suicide",
            "cm_aborts_backoff",
            "cm_aborts_karma",
            "cm_aborts_timestamp",
            "cm_aborts_serialize",
            "cm_aborts_adaptive",
            "cm_switches",
            "cm_norec_hints",
        ]
    }

    fn store(&self, slots: &mut [u64]) {
        slots[..CmKind::COUNT].copy_from_slice(&self.commits_under);
        slots[CmKind::COUNT..2 * CmKind::COUNT].copy_from_slice(&self.aborts_under);
        slots[2 * CmKind::COUNT] = self.switches;
        slots[2 * CmKind::COUNT + 1] = self.norec_hints;
    }

    fn load(slots: &[u64]) -> Self {
        let mut commits_under = [0u64; CmKind::COUNT];
        let mut aborts_under = [0u64; CmKind::COUNT];
        commits_under.copy_from_slice(&slots[..CmKind::COUNT]);
        aborts_under.copy_from_slice(&slots[CmKind::COUNT..2 * CmKind::COUNT]);
        CmStats {
            commits_under,
            aborts_under,
            switches: slots[2 * CmKind::COUNT],
            norec_hints: slots[2 * CmKind::COUNT + 1],
        }
    }
}

/// A contention-management policy: hooks around the transaction retry loop
/// in `Stm::txn_inner`. All simulated work a policy performs (pauses,
/// token CASes) goes through `ctx`, so policies stay deterministic in
/// virtual time.
pub(crate) trait ContentionManager: Sync {
    /// Called once when `Stm::txn` enters, before the first attempt.
    fn txn_start(&self, stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>);
    /// Called after an attempt rolled back, before the retry begins.
    /// `th.retries` has *not* yet been bumped; the policy owns that.
    fn after_abort(&self, stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>);
    /// Called after the attempt committed (the last hook of the
    /// transaction).
    fn after_commit(&self, stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>);
}

// --- devirtualized dispatch (mirrors `backend.rs`) -----------------------
//
// The Suicide fast paths below are the byte-identity contract: under the
// default configuration no hook performs any simulated event, host-side
// bookkeeping, or LCG step beyond what the pre-CM retry loop performed.

/// First hook of `Stm::txn`.
#[inline]
pub(crate) fn txn_start(stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) {
    if stm.cfg.cm == CmKind::Suicide {
        return;
    }
    stm.cm.txn_start(stm, th, ctx);
}

/// Post-rollback hook: pause (or serialize) before the retry.
#[inline]
pub(crate) fn after_abort(stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) {
    if stm.cfg.cm == CmKind::Suicide {
        SuicideCm.after_abort(stm, th, ctx);
        return;
    }
    th.cm_stats.aborts_under[th.cm_active as usize] += 1;
    stm.cm.after_abort(stm, th, ctx);
}

/// Post-commit hook: release any serialization token, retire window
/// accounting.
#[inline]
pub(crate) fn after_commit(stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) {
    if stm.cfg.cm == CmKind::Suicide {
        return;
    }
    th.cm_stats.commits_under[th.cm_active as usize] += 1;
    if th.holds_token {
        if stm.cfg.bug != crate::InjectedBug::SerializeTokenLeak {
            // BUG (injected) when skipped: the token word stays claimed
            // forever, so every later serialization attempt livelocks.
            ctx.write_u64(stm.serialize_token, 0);
        }
        th.holds_token = false;
    }
    stm.cm.after_commit(stm, th, ctx);
}

/// Final hook when `Stm::try_txn` gives up on a persistently failing
/// allocation: account the abort to the active policy and release the
/// serialization token if this thread escalated into holding it (the
/// normal release point, `after_commit`, is never reached on this path).
#[inline]
pub(crate) fn propagate_alloc_failure(stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) {
    if stm.cfg.cm == CmKind::Suicide {
        return;
    }
    th.cm_stats.aborts_under[th.cm_active as usize] += 1;
    if th.holds_token {
        if stm.cfg.bug != crate::InjectedBug::SerializeTokenLeak {
            ctx.write_u64(stm.serialize_token, 0);
        }
        th.holds_token = false;
    }
}

// --- static policies -----------------------------------------------------

/// The paper's SUICIDE policy; behaviourally identical to the pre-CM loop.
struct SuicideCm;

impl ContentionManager for SuicideCm {
    fn txn_start(&self, _stm: &Stm, _th: &mut TxThread, _ctx: &mut Ctx<'_>) {}

    fn after_abort(&self, _stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) {
        th.retries = th.retries.saturating_add(1);
        let pause = th.backoff_cycles();
        ctx.tick(pause);
    }

    fn after_commit(&self, _stm: &Stm, _th: &mut TxThread, _ctx: &mut Ctx<'_>) {}
}

/// Randomized exponential backoff with an 8× wider base window and a
/// deeper exponent cap than SUICIDE's livelock-breaking pause.
struct BackoffExpCm;

impl ContentionManager for BackoffExpCm {
    fn txn_start(&self, _stm: &Stm, _th: &mut TxThread, _ctx: &mut Ctx<'_>) {}

    fn after_abort(&self, _stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) {
        th.retries = th.retries.saturating_add(1);
        let r = th.backoff_rand();
        let cap = 256u64 << th.retries.min(12);
        ctx.tick(r % cap);
    }

    fn after_commit(&self, _stm: &Stm, _th: &mut TxThread, _ctx: &mut Ctx<'_>) {}
}

/// Karma: priority accrues with the footprint invested across aborted
/// attempts of the same transaction; high-karma threads barely pause,
/// low-karma threads yield the full SUICIDE window. Karma resets at
/// commit.
struct KarmaCm;

impl ContentionManager for KarmaCm {
    fn txn_start(&self, _stm: &Stm, _th: &mut TxThread, _ctx: &mut Ctx<'_>) {}

    fn after_abort(&self, _stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) {
        let (reads, writes) = th.footprint();
        th.karma = th.karma.saturating_add(reads + writes + 1);
        th.retries = th.retries.saturating_add(1);
        let r = th.backoff_rand();
        let cap = 32u64 << th.retries.min(8);
        // log2(karma)+1, capped: each doubling of invested work halves the
        // pause, down to 1/64 of the SUICIDE window.
        let shrink = (64 - th.karma.leading_zeros()).min(6);
        ctx.tick((r % cap) >> shrink);
    }

    fn after_commit(&self, _stm: &Stm, th: &mut TxThread, _ctx: &mut Ctx<'_>) {
        th.karma = 0;
    }
}

/// Timestamp: seniority by virtual-time age since the transaction's first
/// attempt. Age is bucketed into 4096-cycle seniority units; each unit
/// level halves the pause, so older transactions drain first.
struct TimestampCm;

impl ContentionManager for TimestampCm {
    fn txn_start(&self, _stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) {
        th.cm_start = ctx.now();
    }

    fn after_abort(&self, _stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) {
        th.retries = th.retries.saturating_add(1);
        let r = th.backoff_rand();
        let cap = 32u64 << th.retries.min(8);
        let age = ctx.now().saturating_sub(th.cm_start) / 4096;
        let shrink = (64 - age.leading_zeros()).min(6);
        ctx.tick((r % cap) >> shrink);
    }

    fn after_commit(&self, _stm: &Stm, _th: &mut TxThread, _ctx: &mut Ctx<'_>) {}
}

/// Consecutive aborts before [`CmKind::Serialize`] reaches for the global
/// token.
const SERIALIZE_AFTER: u32 = 4;

/// Serialize: after [`SERIALIZE_AFTER`] consecutive aborts, acquire the
/// global serialization token (a CAS word in simulated memory, so the
/// acquisition is costed and deterministic) and hold it to commit. Other
/// serialized threads wait on the token; unserialized threads are
/// unaffected.
struct SerializeCm;

impl ContentionManager for SerializeCm {
    fn txn_start(&self, _stm: &Stm, _th: &mut TxThread, _ctx: &mut Ctx<'_>) {}

    fn after_abort(&self, stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) {
        th.retries = th.retries.saturating_add(1);
        if th.retries >= SERIALIZE_AFTER && !th.holds_token {
            while ctx
                .cas_u64(stm.serialize_token, 0, th.tid as u64 + 1)
                .is_err()
            {
                ctx.tick(64);
            }
            th.holds_token = true;
        } else {
            let pause = th.backoff_cycles();
            ctx.tick(pause);
        }
    }

    // Token release is handled generically in `after_commit` above (it
    // must also run when the adaptive controller leaves this policy).
    fn after_commit(&self, _stm: &Stm, _th: &mut TxThread, _ctx: &mut Ctx<'_>) {}
}

// --- the adaptive controller ---------------------------------------------

/// Attempts (commits + aborts) per abort-rate window.
const WINDOW: u32 = 64;
/// Escalate when more than 3/8 of a window's attempts aborted.
const ESCALATE_NUM: u32 = 3;
const ESCALATE_DEN: u32 = 8;
/// De-escalate when fewer than 1/16 aborted.
const DEESCALATE_DEN: u32 = 16;
/// The escalation ladder (indices into [`CmKind::STATIC`] minus
/// Timestamp, which targets long-transaction starvation rather than raw
/// abort pressure and is reachable only by configuring it statically).
const LADDER: [CmKind; 4] = [
    CmKind::Suicide,
    CmKind::BackoffExp,
    CmKind::Karma,
    CmKind::Serialize,
];

/// Adaptive: delegate to the currently active static policy, and at every
/// window boundary walk the [`LADDER`] up (abort rate above 3/8) or down
/// (below 1/16). Every input is per-thread and virtual-time deterministic
/// — own window counters, own stats deltas — so switch points replay
/// bit-identically across runs and executors.
struct AdaptiveCm;

impl AdaptiveCm {
    fn rotate(&self, th: &mut TxThread, ctx: &mut Ctx<'_>) {
        let total = th.window_commits + th.window_aborts;
        if total < WINDOW {
            return;
        }
        // ORT-aliasing signature of the closing window: aborts whose cause
        // is a stripe lock or the two-probe read race. A NOrec backend has
        // no ORT and none of these causes; record the hint.
        let delta = |s: &StmStats, cause: AbortCause| s.by_cause[cause as usize];
        let ort_now = delta(&th.stats, AbortCause::ReadLocked)
            + delta(&th.stats, AbortCause::WriteLocked)
            + delta(&th.stats, AbortCause::ReadRace);
        let ort_base = delta(&th.window_base, AbortCause::ReadLocked)
            + delta(&th.window_base, AbortCause::WriteLocked)
            + delta(&th.window_base, AbortCause::ReadRace);
        let ort_aborts = ort_now - ort_base;
        if ort_aborts * 2 > th.window_aborts as u64 {
            th.cm_stats.norec_hints += 1;
        }
        let pos = LADDER.iter().position(|&k| k == th.cm_active).unwrap_or(0);
        let next = if th.window_aborts * ESCALATE_DEN > total * ESCALATE_NUM {
            LADDER[(pos + 1).min(LADDER.len() - 1)]
        } else if th.window_aborts * DEESCALATE_DEN < total {
            LADDER[pos.saturating_sub(1)]
        } else {
            th.cm_active
        };
        if next != th.cm_active {
            th.cm_stats.switches += 1;
            th.switch_log.push(CmSwitch {
                window: th.windows,
                at: ctx.now(),
                from: th.cm_active,
                to: next,
            });
            th.cm_active = next;
        }
        th.windows += 1;
        th.window_commits = 0;
        th.window_aborts = 0;
        th.window_base = th.stats;
    }
}

impl ContentionManager for AdaptiveCm {
    fn txn_start(&self, stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) {
        th.cm_active.manager().txn_start(stm, th, ctx);
    }

    fn after_abort(&self, stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) {
        th.cm_active.manager().after_abort(stm, th, ctx);
        th.window_aborts += 1;
        self.rotate(th, ctx);
    }

    fn after_commit(&self, stm: &Stm, th: &mut TxThread, ctx: &mut Ctx<'_>) {
        th.cm_active.manager().after_commit(stm, th, ctx);
        th.window_commits += 1;
        self.rotate(th, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Stm, StmConfig};
    use tm_alloc::AllocatorKind;
    use tm_sim::{MachineConfig, Sim};

    fn setup(cm: CmKind) -> (Sim, Stm) {
        let sim = Sim::new(MachineConfig::xeon_e5405());
        let alloc = AllocatorKind::TbbMalloc.build(&sim);
        let stm = Stm::new(
            &sim,
            alloc,
            StmConfig {
                cm,
                ..StmConfig::default()
            },
        );
        (sim, stm)
    }

    /// Hammer one shared counter; whatever the CM does, the result must be
    /// exact and every attempt accounted for.
    fn run_counter(cm: CmKind, threads: usize, iters: u64) -> Stm {
        let (sim, stm) = setup(cm);
        let addr = 0x5000_0000u64;
        sim.run(threads, |ctx| {
            let mut th = stm.thread(ctx.tid());
            for _ in 0..iters {
                stm.txn(ctx, &mut th, |tx, ctx| {
                    let v = tx.read(ctx, addr)?;
                    ctx.tick(20);
                    tx.write(ctx, addr, v + 1)
                });
            }
            stm.retire(th);
        });
        let total = threads as u64 * iters;
        sim.with_state(|m| assert_eq!(m.read_u64(addr), total));
        assert_eq!(stm.stats().commits, total);
        stm
    }

    #[test]
    fn every_policy_keeps_the_counter_exact() {
        for cm in CmKind::ALL {
            let stm = run_counter(cm, 8, 40);
            if cm != CmKind::Suicide {
                let s = stm.cm_stats();
                assert_eq!(
                    s.commits_under.iter().sum::<u64>(),
                    320,
                    "{cm:?}: every commit is attributed to a policy"
                );
            }
        }
    }

    #[test]
    fn suicide_tallies_stay_zero() {
        // The byte-identity contract: the default configuration performs
        // no CM bookkeeping at all.
        let stm = run_counter(CmKind::Suicide, 8, 40);
        assert_eq!(stm.cm_stats().attempts(), 0);
        assert!(stm.cm_switches().is_empty());
    }

    #[test]
    fn backoff_trades_time_for_fewer_aborts() {
        let suicide = run_counter(CmKind::Suicide, 8, 40);
        let backoff = run_counter(CmKind::BackoffExp, 8, 40);
        assert!(
            backoff.stats().aborts() < suicide.stats().aborts(),
            "wider backoff must reconflict less ({} vs {})",
            backoff.stats().aborts(),
            suicide.stats().aborts()
        );
    }

    #[test]
    fn serialize_token_caps_consecutive_aborts() {
        let stm = run_counter(CmKind::Serialize, 8, 40);
        let s = stm.cm_stats();
        assert_eq!(s.commits_under[CmKind::Serialize as usize], 320);
        assert!(stm.serialize_token != 0, "token word must be allocated");
    }

    #[test]
    fn token_is_released_at_commit() {
        let (sim, stm) = setup(CmKind::Serialize);
        let addr = 0x5000_0000u64;
        sim.run(8, |ctx| {
            let mut th = stm.thread(ctx.tid());
            for _ in 0..30 {
                stm.txn(ctx, &mut th, |tx, ctx| {
                    let v = tx.read(ctx, addr)?;
                    ctx.tick(50);
                    tx.write(ctx, addr, v + 1)
                });
            }
            assert!(!th.holds_token, "token must not outlive a transaction");
            stm.retire(th);
        });
        sim.with_state(|m| assert_eq!(m.read_u64(stm.serialize_token), 0));
    }

    #[test]
    fn adaptive_escalates_under_contention_and_replays_identically() {
        let run = || {
            let (sim, stm) = setup(CmKind::Adaptive);
            let addr = 0x5000_0000u64;
            sim.run(8, |ctx| {
                let mut th = stm.thread(ctx.tid());
                for _ in 0..120 {
                    stm.txn(ctx, &mut th, |tx, ctx| {
                        let v = tx.read(ctx, addr)?;
                        ctx.tick(60);
                        tx.write(ctx, addr, v + 1)
                    });
                }
                stm.retire(th);
            });
            (stm.cm_switches(), stm.cm_stats())
        };
        let (switches, stats) = run();
        assert!(
            stats.switches > 0,
            "8 threads on one hot counter must push the controller off Suicide"
        );
        assert_eq!(switches.len() as u64, stats.switches);
        // Determinism: the exact same switch transcript on a second run.
        let (again, _) = run();
        assert_eq!(switches, again);
    }

    #[test]
    fn adaptive_stays_quiet_without_contention() {
        let (sim, stm) = setup(CmKind::Adaptive);
        sim.run(4, |ctx| {
            let addr = 0x6000_0000u64 + ctx.tid() as u64 * 4096;
            let mut th = stm.thread(ctx.tid());
            for _ in 0..100 {
                stm.txn(ctx, &mut th, |tx, ctx| {
                    let v = tx.read(ctx, addr)?;
                    tx.write(ctx, addr, v + 1)
                });
            }
            stm.retire(th);
        });
        let s = stm.cm_stats();
        assert_eq!(s.switches, 0, "disjoint workloads must stay on Suicide");
        assert_eq!(s.commits_under[CmKind::Suicide as usize], 400);
    }

    #[test]
    fn kind_tokens_round_trip() {
        for k in CmKind::ALL {
            assert_eq!(CmKind::parse(k.name()), Some(k));
        }
        assert_eq!(CmKind::parse("SUICIDE"), None);
        assert_eq!(CmKind::parse(""), None);
        assert_eq!(
            CmKind::list(),
            "suicide, backoff, karma, timestamp, serialize, adaptive"
        );
        assert_eq!(CmKind::default(), CmKind::Suicide);
    }

    #[test]
    fn only_token_policies_allocate_the_token() {
        for k in CmKind::ALL {
            assert_eq!(
                k.needs_token(),
                matches!(k, CmKind::Serialize | CmKind::Adaptive)
            );
        }
    }

    #[test]
    fn cm_stats_slots_round_trip() {
        let mut s = CmStats::default();
        s.commits_under[CmKind::Karma as usize] = 7;
        s.aborts_under[CmKind::Serialize as usize] = 3;
        s.switches = 2;
        s.norec_hints = 1;
        let mut slots = [0u64; <CmStats as tm_obs::SlotSchema>::WIDTH];
        tm_obs::SlotSchema::store(&s, &mut slots);
        let back = <CmStats as tm_obs::SlotSchema>::load(&slots);
        assert_eq!(back.commits_under, s.commits_under);
        assert_eq!(back.aborts_under, s.aborts_under);
        assert_eq!(back.switches, 2);
        assert_eq!(back.norec_hints, 1);
        assert_eq!(
            <CmStats as tm_obs::SlotSchema>::slot_names().len(),
            <CmStats as tm_obs::SlotSchema>::WIDTH
        );
    }

    #[test]
    fn dominant_policy_prefers_most_commits() {
        let mut s = CmStats::default();
        assert_eq!(s.dominant_policy(), CmKind::Suicide);
        s.commits_under[CmKind::BackoffExp as usize] = 10;
        s.commits_under[CmKind::Karma as usize] = 30;
        assert_eq!(s.dominant_policy(), CmKind::Karma);
        assert_eq!(s.attempts(), 40);
    }
}
