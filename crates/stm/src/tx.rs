//! Transaction descriptors: the per-thread state shared by every
//! [`TmBackend`](crate::backend::TmBackend) (read/write sets, redo/undo
//! logs, transactional malloc/free buffers, limbo-based reclamation and
//! statistics), plus the [`Tx`] handle workloads program against. The
//! concurrency-control protocol itself lives in [`crate::backend`].

use tm_sim::{Ctx, HtmAbort};

use crate::alloc::ObjectCache;
use crate::cm::{CmKind, CmStats, CmSwitch};
use crate::stats::{AbortCause, StmStats};
use crate::table::GenTable;
use crate::Stm;

/// Why control left the transaction body early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Abort {
    /// A conflict was detected; SUICIDE CM restarts the transaction.
    Conflict(AbortCause),
    /// The workload requested a restart (STAMP's `TM_RESTART`).
    Explicit,
}

/// Per-worker transaction state, reused across transactions (TinySTM's
/// thread descriptor). Create with [`Stm::thread`], hand back with
/// [`Stm::retire`] so its statistics are counted.
pub struct TxThread {
    /// Worker index, used as the shard id for per-thread statistics.
    pub tid: usize,
    /// Snapshot timestamp. ETL: read version from the global clock.
    /// NOrec: last validated (even) sequence number. Sim-HTM: fallback
    /// lock value observed at begin.
    pub(crate) rv: u64,
    /// Read log. ETL: (lock address, version) pairs. NOrec: (address,
    /// value) pairs. Sim-HTM: unused (the cache model is the read set).
    pub(crate) read_set: Vec<(u64, u64)>,
    pub(crate) write_entries: Vec<(u64, u64)>,
    /// Write-set index: addr → position in `write_entries`. Generation
    /// stamped, so `begin` clears it in O(1).
    pub(crate) wmap: GenTable,
    pub(crate) locks_held: Vec<(u64, u64)>,
    /// Stripe locks owned by the current transaction (set-style GenTable).
    pub(crate) lockset: GenTable,
    /// Write-through undo log: (addr, pre-image), restored in reverse on
    /// abort.
    pub(crate) undo: Vec<(u64, u64)>,
    pub(crate) tx_allocs: Vec<(u64, u64)>,
    pub(crate) tx_frees: Vec<u64>,
    /// Blocks freed by committed transactions, awaiting quiescence:
    /// (free timestamp, addr, size if known).
    limbo: Vec<(u64, u64, Option<u64>)>,
    /// Recycled scratch for `drain_limbo`'s keep list, so steady-state
    /// reclamation allocates nothing on the host.
    limbo_scratch: Vec<(u64, u64, Option<u64>)>,
    /// Per-thread LCG driving abort backoff (see `Stm::txn`).
    pub(crate) backoff_state: u64,
    /// Consecutive aborts of the current transaction.
    pub(crate) retries: u32,
    /// Sim-HTM: first doom notice observed for the current attempt
    /// (host-side mirror of the cache model's flag, so already-doomed
    /// attempts stop without further simulated events).
    pub(crate) htm_doom: Option<HtmAbort>,
    /// Sim-HTM: this attempt runs under the serial-irrevocable fallback
    /// lock.
    pub(crate) htm_irrevocable: bool,
    pub(crate) stats: StmStats,
    pub(crate) cache: Option<ObjectCache>,
    /// The allocator error behind the most recent
    /// [`AbortCause::AllocFailed`] abort, stashed by [`Tx::try_malloc`] so
    /// [`Stm::try_txn`](crate::Stm::try_txn) can propagate the real cause
    /// once the retry budget is spent.
    pub(crate) last_alloc_error: Option<tm_alloc::AllocError>,
    /// Contention-management policy currently reacting to this thread's
    /// aborts (fixed for static [`CmKind`]s; walked up and down the
    /// escalation ladder by [`CmKind::Adaptive`]).
    pub(crate) cm_active: CmKind,
    /// Karma CM: footprint accumulated across aborted attempts of the
    /// current transaction; reset at commit.
    pub(crate) karma: u64,
    /// Timestamp CM: virtual time of the current transaction's first
    /// attempt.
    pub(crate) cm_start: u64,
    /// Serialize CM: this thread owns the global serialization token.
    pub(crate) holds_token: bool,
    /// Per-policy commit/abort tallies and controller activity.
    pub(crate) cm_stats: CmStats,
    /// Adaptive controller: commits in the current abort-rate window.
    pub(crate) window_commits: u32,
    /// Adaptive controller: aborts in the current abort-rate window.
    pub(crate) window_aborts: u32,
    /// Adaptive controller: index of the current window.
    pub(crate) windows: u32,
    /// Adaptive controller: `stats` snapshot at the current window's start
    /// (per-cause deltas drive the NOrec-affinity hint).
    pub(crate) window_base: StmStats,
    /// Adaptive controller: every policy switch this thread took, in
    /// order. Compared bit-for-bit by the determinism tests.
    pub(crate) switch_log: Vec<CmSwitch>,
}

impl TxThread {
    pub(crate) fn new(tid: usize, object_cache: bool, cm: CmKind) -> Self {
        TxThread {
            tid,
            rv: 0,
            read_set: Vec::with_capacity(256),
            write_entries: Vec::with_capacity(64),
            wmap: GenTable::new(),
            locks_held: Vec::with_capacity(64),
            lockset: GenTable::new(),
            undo: Vec::new(),
            tx_allocs: Vec::new(),
            tx_frees: Vec::new(),
            limbo: Vec::new(),
            limbo_scratch: Vec::new(),
            backoff_state: 0x9e3779b97f4a7c15 ^ (tid as u64 + 1),
            retries: 0,
            htm_doom: None,
            htm_irrevocable: false,
            stats: StmStats::default(),
            cache: object_cache.then(ObjectCache::default),
            last_alloc_error: None,
            cm_active: cm.initial_policy(),
            karma: 0,
            cm_start: 0,
            holds_token: false,
            cm_stats: CmStats::default(),
            window_commits: 0,
            window_aborts: 0,
            windows: 0,
            window_base: StmStats::default(),
            switch_log: Vec::new(),
        }
    }

    /// Statistics accumulated by this thread so far.
    pub fn local_stats(&self) -> StmStats {
        self.stats
    }

    /// Contention-management statistics accumulated by this thread so far.
    pub fn local_cm_stats(&self) -> CmStats {
        self.cm_stats
    }

    /// Every policy switch the adaptive controller took on this thread, in
    /// order (empty for static policies).
    pub fn cm_switches(&self) -> &[CmSwitch] {
        &self.switch_log
    }

    /// (reads, writes) footprint of the most recent transaction attempt
    /// (the sets survive a commit until the next `begin` clears them).
    pub(crate) fn footprint(&self) -> (u64, u64) {
        (self.read_set.len() as u64, self.write_entries.len() as u64)
    }

    /// Clear every per-attempt set (the backend-independent half of
    /// `begin`; the backend then takes its snapshot).
    pub(crate) fn reset(&mut self, ctx: &mut Ctx<'_>) {
        self.read_set.clear();
        self.write_entries.clear();
        self.wmap.clear();
        self.locks_held.clear();
        self.lockset.clear();
        self.undo.clear();
        self.tx_allocs.clear();
        self.tx_frees.clear();
        self.htm_doom = None;
        ctx.tick(20); // descriptor setup
    }

    /// Hand limbo blocks whose free predates every in-flight snapshot to
    /// the object cache (when enabled) or the allocator — TinySTM's
    /// epoch-based reclamation. Doomed readers can therefore never observe
    /// allocator metadata or re-initialized fields in recycled blocks.
    pub(crate) fn drain_limbo(&mut self, stm: &Stm, ctx: &mut Ctx<'_>) {
        // Scanning every thread's snapshot costs a few reads; only bother
        // once a handful of blocks are waiting (as TinySTM's epoch GC
        // batches too).
        if self.limbo.len() < 8 {
            return;
        }
        let safe = stm.safe_timestamp(ctx).min(self.rv);
        self.drain_limbo_below(stm, ctx, safe);
    }

    /// Sim-HTM reclamation: hardware transactions publish no epoch
    /// snapshot (any write to a tracked line dooms the reader before it
    /// can act on recycled memory), so every pending block is freed.
    pub(crate) fn drain_limbo_all(&mut self, stm: &Stm, ctx: &mut Ctx<'_>) {
        if self.limbo.len() < 8 {
            return;
        }
        self.drain_limbo_below(stm, ctx, u64::MAX);
    }

    fn drain_limbo_below(&mut self, stm: &Stm, ctx: &mut Ctx<'_>, safe: u64) {
        let mut keep = std::mem::take(&mut self.limbo_scratch);
        keep.clear();
        let mut entries = std::mem::take(&mut self.limbo);
        for (ts, addr, size) in entries.drain(..) {
            if ts >= safe {
                keep.push((ts, addr, size));
                continue;
            }
            if let (Some(cache), Some(size)) = (&mut self.cache, size) {
                if cache.put(size, addr) {
                    continue;
                }
            }
            if self.cache.is_some() {
                // Only object-cache runs register sizes (see `Tx::malloc`).
                stm.sizes.remove(addr);
            }
            stm.allocator.free(ctx, addr);
        }
        self.limbo_scratch = entries;
        self.limbo = keep;
    }

    /// Deterministic pseudo-random abort backoff, bounded-exponential in
    /// the retry count. The paper's SUICIDE strategy restarts immediately
    /// and relies on real-machine timing noise to break symmetry between
    /// conflicting transactions; under the deterministic scheduler two
    /// symmetric multi-write transactions would otherwise phase-lock into
    /// a livelock, so the noise is reintroduced here, deterministically.
    pub(crate) fn backoff_cycles(&mut self) -> u64 {
        let r = self.backoff_rand();
        let cap = 32u64 << self.retries.min(8);
        r % cap
    }

    /// One LCG step of the per-thread backoff stream (shared by every
    /// contention manager, so a policy switch continues the same
    /// deterministic stream rather than restarting it).
    pub(crate) fn backoff_rand(&mut self) -> u64 {
        self.backoff_state = self
            .backoff_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.backoff_state >> 33
    }

    /// Mark this thread quiescent (no snapshot in flight).
    pub(crate) fn clear_active(&self, stm: &Stm, ctx: &mut Ctx<'_>) {
        ctx.write_u64(stm.active_addr(self.tid), 0);
    }

    /// Backend-independent rollback: release owned versioned locks
    /// (restoring pre-lock versions), restore write-through pre-images,
    /// undo transactional allocations, forget deferred frees.
    pub(crate) fn rollback_common(&mut self, stm: &Stm, ctx: &mut Ctx<'_>, cause: AbortCause) {
        // Write-through: restore pre-images (reverse order so the first
        // write's pre-image wins) before the locks are released.
        while let Some((addr, old)) = self.undo.pop() {
            ctx.write_u64(addr, old);
        }
        for &(la, prev) in &self.locks_held {
            ctx.write_u64(la, prev << 1);
        }
        // Memory allocated inside the aborting transaction must be undone
        // (paper §2) — or parked in the object cache (§6.2).
        let allocs = std::mem::take(&mut self.tx_allocs);
        if stm.cfg.bug == crate::InjectedBug::LeakOnAllocFail && cause == AbortCause::AllocFailed {
            // BUG (injected): forget the allocation journal instead of
            // unwinding it — every block the failing transaction had
            // already obtained leaks. The every-site OOM sweep must
            // observe the leak through the heap auditor.
        } else {
            for (addr, size) in allocs {
                if let Some(cache) = &mut self.cache {
                    if cache.put(size, addr) {
                        continue;
                    }
                    stm.sizes.remove(addr);
                }
                stm.allocator.free(ctx, addr);
            }
        }
        self.tx_frees.clear();
        self.stats.record_abort(cause);
        ctx.tick(15);
    }

    /// Commit-time memory management: deferred frees enter the limbo list
    /// stamped with the commit timestamp (they reach the allocator or the
    /// object cache after quiescence); allocations become permanent.
    pub(crate) fn finalize_memory(&mut self, stm: &Stm, ts: u64) {
        let frees = std::mem::take(&mut self.tx_frees);
        for addr in frees {
            let size = if self.cache.is_some() {
                stm.sizes.get(addr)
            } else {
                None
            };
            self.limbo.push((ts, addr, size));
        }
        self.tx_allocs.clear();
    }

    /// Move any remaining limbo blocks to the STM's global pool (freed by
    /// [`Stm::quiesce`] once the run is over).
    pub(crate) fn surrender_limbo(&mut self, stm: &Stm) {
        stm.global_limbo.lock().append(&mut self.limbo);
    }
}

/// Handle passed to transaction bodies; all transactional reads, writes and
/// memory management go through it. Reads and writes dispatch to the
/// configured [`BackendKind`](crate::BackendKind); allocation is
/// backend-independent.
pub struct Tx<'a> {
    stm: &'a Stm,
    th: &'a mut TxThread,
}

impl<'a> Tx<'a> {
    pub(crate) fn new(stm: &'a Stm, th: &'a mut TxThread) -> Self {
        Tx { stm, th }
    }

    /// Transactional read of the aligned word at `addr`.
    pub fn read(&mut self, ctx: &mut Ctx<'_>, addr: u64) -> Result<u64, Abort> {
        crate::backend::read(self.stm, self.th, ctx, addr)
    }

    /// Transactional write of the aligned word at `addr` (value buffered
    /// until commit under write-back designs).
    pub fn write(&mut self, ctx: &mut Ctx<'_>, addr: u64, val: u64) -> Result<(), Abort> {
        crate::backend::write(self.stm, self.th, ctx, addr, val)
    }

    /// Read-modify-write helper.
    pub fn update(
        &mut self,
        ctx: &mut Ctx<'_>,
        addr: u64,
        f: impl FnOnce(u64) -> u64,
    ) -> Result<(), Abort> {
        let v = self.read(ctx, addr)?;
        self.write(ctx, addr, f(v))
    }

    /// Transactional allocation: undone if the transaction aborts. Served
    /// from the object cache when the §6.2 optimization is enabled.
    ///
    /// Panics if the allocator refuses the request — allocation-failure-
    /// aware workloads should call [`Tx::try_malloc`], which turns the
    /// refusal into a clean [`AbortCause::AllocFailed`] abort instead.
    pub fn malloc(&mut self, ctx: &mut Ctx<'_>, size: u64) -> u64 {
        match self.try_malloc(ctx, size) {
            Ok(addr) => addr,
            Err(_) => {
                let e = self
                    .th
                    .last_alloc_error
                    .expect("try_malloc stashes the error before aborting");
                panic!("transactional malloc({size}) failed: {e} (use Tx::try_malloc for a clean abort)")
            }
        }
    }

    /// Transactional allocation that surfaces allocator refusal as a clean
    /// abort: on failure the transaction unwinds (journaled allocations
    /// freed, locks released) with [`AbortCause::AllocFailed`], and the
    /// retry loop in [`Stm::try_txn`](crate::Stm::try_txn) decides between
    /// retrying and propagating the underlying error. Object-cache hits
    /// cannot fail — recycled blocks never touch the allocator.
    pub fn try_malloc(&mut self, ctx: &mut Ctx<'_>, size: u64) -> Result<u64, Abort> {
        self.th.stats.tx_mallocs += 1;
        let addr = if let Some(cache) = &mut self.th.cache {
            match cache.take(size) {
                Some(a) => {
                    self.th.stats.cache_hits += 1;
                    ctx.tick(8); // cache lookup instead of allocator call
                    a
                }
                None => self.allocator_malloc(ctx, size)?,
            }
        } else {
            self.allocator_malloc(ctx, size)?
        };
        if self.th.cache.is_some() {
            self.stm.sizes.insert(addr, size);
        }
        self.th.tx_allocs.push((addr, size));
        Ok(addr)
    }

    /// The allocator call behind [`Tx::try_malloc`], translating an
    /// [`tm_alloc::AllocError`] into the alloc-failed abort (with the
    /// error stashed for [`Stm::try_txn`](crate::Stm::try_txn)).
    fn allocator_malloc(&mut self, ctx: &mut Ctx<'_>, size: u64) -> Result<u64, Abort> {
        match self.stm.allocator.try_malloc(ctx, size) {
            Ok(addr) => Ok(addr),
            Err(e) => {
                self.th.last_alloc_error = Some(e);
                Err(Abort::Conflict(AbortCause::AllocFailed))
            }
        }
    }

    /// Transactional free: deferred to commit time (paper §2); dropped if
    /// the transaction aborts.
    pub fn free(&mut self, ctx: &mut Ctx<'_>, addr: u64) {
        self.th.stats.tx_frees += 1;
        if self.stm.cfg.bug == crate::InjectedBug::TxAllocEarlyFree {
            // BUG (injected): hand the block to the allocator right now —
            // before commit, without quiescence, and irrevocably even if
            // this transaction later aborts.
            self.stm.allocator.free(ctx, addr);
            return;
        }
        self.th.tx_frees.push(addr);
    }

    /// Attempt to commit; returns false when commit-time validation fails
    /// (the caller rolls back and retries).
    pub(crate) fn commit(&mut self, ctx: &mut Ctx<'_>) -> bool {
        crate::backend::commit(self.stm, self.th, ctx)
    }
}
