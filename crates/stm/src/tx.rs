//! Transaction descriptors and the ETL write-back protocol.
//!
//! Versioned-lock word encoding (one 64-bit word per ORT entry):
//! * bit 0 set — locked; bits 63..1 hold the owner's thread id;
//! * bit 0 clear — free; bits 63..1 hold the stripe's commit timestamp.

use tm_sim::Ctx;

use crate::alloc::ObjectCache;
use crate::stats::{AbortCause, StmStats};
use crate::table::GenTable;
use crate::{LockDesign, Stm, WriteMode};

/// Why control left the transaction body early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Abort {
    /// A conflict was detected; SUICIDE CM restarts the transaction.
    Conflict(AbortCause),
    /// The workload requested a restart (STAMP's `TM_RESTART`).
    Explicit,
}

#[inline]
fn locked_word(tid: usize) -> u64 {
    ((tid as u64) << 1) | 1
}

#[inline]
fn is_locked(word: u64) -> bool {
    word & 1 == 1
}

#[inline]
fn owner_of(word: u64) -> u64 {
    word >> 1
}

#[inline]
fn version_of(word: u64) -> u64 {
    word >> 1
}

/// Per-worker transaction state, reused across transactions (TinySTM's
/// thread descriptor). Create with [`Stm::thread`], hand back with
/// [`Stm::retire`] so its statistics are counted.
pub struct TxThread {
    /// Worker index, used as the shard id for per-thread statistics.
    pub tid: usize,
    /// Snapshot timestamp (read version).
    rv: u64,
    read_set: Vec<(u64, u64)>,
    write_entries: Vec<(u64, u64)>,
    /// Write-set index: addr → position in `write_entries`. Generation
    /// stamped, so `begin` clears it in O(1).
    wmap: GenTable,
    locks_held: Vec<(u64, u64)>,
    /// Stripe locks owned by the current transaction (set-style GenTable).
    lockset: GenTable,
    /// Write-through undo log: (addr, pre-image), restored in reverse on
    /// abort.
    undo: Vec<(u64, u64)>,
    tx_allocs: Vec<(u64, u64)>,
    tx_frees: Vec<u64>,
    /// Blocks freed by committed transactions, awaiting quiescence:
    /// (free timestamp, addr, size if known).
    limbo: Vec<(u64, u64, Option<u64>)>,
    /// Recycled scratch for `drain_limbo`'s keep list, so steady-state
    /// reclamation allocates nothing on the host.
    limbo_scratch: Vec<(u64, u64, Option<u64>)>,
    /// Per-thread LCG driving abort backoff (see `Stm::txn`).
    pub(crate) backoff_state: u64,
    /// Consecutive aborts of the current transaction.
    pub(crate) retries: u32,
    pub(crate) stats: StmStats,
    pub(crate) cache: Option<ObjectCache>,
}

impl TxThread {
    pub(crate) fn new(tid: usize, object_cache: bool) -> Self {
        TxThread {
            tid,
            rv: 0,
            read_set: Vec::with_capacity(256),
            write_entries: Vec::with_capacity(64),
            wmap: GenTable::new(),
            locks_held: Vec::with_capacity(64),
            lockset: GenTable::new(),
            undo: Vec::new(),
            tx_allocs: Vec::new(),
            tx_frees: Vec::new(),
            limbo: Vec::new(),
            limbo_scratch: Vec::new(),
            backoff_state: 0x9e3779b97f4a7c15 ^ (tid as u64 + 1),
            retries: 0,
            stats: StmStats::default(),
            cache: object_cache.then(ObjectCache::default),
        }
    }

    /// Statistics accumulated by this thread so far.
    pub fn local_stats(&self) -> StmStats {
        self.stats
    }

    /// (reads, writes) footprint of the most recent transaction attempt
    /// (the sets survive a commit until the next `begin` clears them).
    pub(crate) fn footprint(&self) -> (u64, u64) {
        (self.read_set.len() as u64, self.write_entries.len() as u64)
    }

    pub(crate) fn begin(&mut self, stm: &Stm, ctx: &mut Ctx<'_>) {
        self.read_set.clear();
        self.write_entries.clear();
        self.wmap.clear();
        self.locks_held.clear();
        self.lockset.clear();
        self.undo.clear();
        self.tx_allocs.clear();
        self.tx_frees.clear();
        ctx.tick(20); // descriptor setup
                      // Publish a (conservative) snapshot *before* taking the real one:
                      // a reclamation scan that misses the publication can then only
                      // free blocks whose unlink already predates the second clock read,
                      // so no reachable block is ever recycled under our feet.
        let announce = ctx.read_u64(stm.clock_addr);
        ctx.write_u64(stm.active_addr(self.tid), announce + 1);
        self.rv = ctx.read_u64(stm.clock_addr);
        self.drain_limbo(stm, ctx);
    }

    /// Hand limbo blocks whose free predates every in-flight snapshot to
    /// the object cache (when enabled) or the allocator — TinySTM's
    /// epoch-based reclamation. Doomed readers can therefore never observe
    /// allocator metadata or re-initialized fields in recycled blocks.
    fn drain_limbo(&mut self, stm: &Stm, ctx: &mut Ctx<'_>) {
        // Scanning every thread's snapshot costs a few reads; only bother
        // once a handful of blocks are waiting (as TinySTM's epoch GC
        // batches too).
        if self.limbo.len() < 8 {
            return;
        }
        let safe = stm.safe_timestamp(ctx).min(self.rv);
        let mut keep = std::mem::take(&mut self.limbo_scratch);
        keep.clear();
        let mut entries = std::mem::take(&mut self.limbo);
        for (ts, addr, size) in entries.drain(..) {
            if ts >= safe {
                keep.push((ts, addr, size));
                continue;
            }
            if let (Some(cache), Some(size)) = (&mut self.cache, size) {
                if cache.put(size, addr) {
                    continue;
                }
            }
            if self.cache.is_some() {
                // Only object-cache runs register sizes (see `Tx::malloc`).
                stm.sizes.remove(addr);
            }
            stm.allocator.free(ctx, addr);
        }
        self.limbo_scratch = entries;
        self.limbo = keep;
    }

    /// Deterministic pseudo-random abort backoff, bounded-exponential in
    /// the retry count. The paper's SUICIDE strategy restarts immediately
    /// and relies on real-machine timing noise to break symmetry between
    /// conflicting transactions; under the deterministic scheduler two
    /// symmetric multi-write transactions would otherwise phase-lock into
    /// a livelock, so the noise is reintroduced here, deterministically.
    pub(crate) fn backoff_cycles(&mut self) -> u64 {
        self.backoff_state = self
            .backoff_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let cap = 32u64 << self.retries.min(8);
        (self.backoff_state >> 33) % cap
    }

    /// Mark this thread quiescent (no snapshot in flight).
    pub(crate) fn clear_active(&self, stm: &Stm, ctx: &mut Ctx<'_>) {
        ctx.write_u64(stm.active_addr(self.tid), 0);
    }

    /// Release owned versioned locks (restoring pre-lock versions), undo
    /// transactional allocations, forget deferred frees.
    pub(crate) fn rollback(&mut self, stm: &Stm, ctx: &mut Ctx<'_>, cause: AbortCause) {
        // Write-through: restore pre-images (reverse order so the first
        // write's pre-image wins) before the locks are released.
        while let Some((addr, old)) = self.undo.pop() {
            ctx.write_u64(addr, old);
        }
        for &(la, prev) in &self.locks_held {
            ctx.write_u64(la, prev << 1);
        }
        // Memory allocated inside the aborting transaction must be undone
        // (paper §2) — or parked in the object cache (§6.2).
        let allocs = std::mem::take(&mut self.tx_allocs);
        for (addr, size) in allocs {
            if let Some(cache) = &mut self.cache {
                if cache.put(size, addr) {
                    continue;
                }
                stm.sizes.remove(addr);
            }
            stm.allocator.free(ctx, addr);
        }
        self.tx_frees.clear();
        self.stats.record_abort(cause);
        ctx.tick(15);
    }

    /// Move any remaining limbo blocks to the STM's global pool (freed by
    /// [`Stm::quiesce`] once the run is over).
    pub(crate) fn surrender_limbo(&mut self, stm: &Stm) {
        stm.global_limbo.lock().append(&mut self.limbo);
    }
}

/// Handle passed to transaction bodies; all transactional reads, writes and
/// memory management go through it.
pub struct Tx<'a> {
    stm: &'a Stm,
    th: &'a mut TxThread,
}

impl<'a> Tx<'a> {
    pub(crate) fn new(stm: &'a Stm, th: &'a mut TxThread) -> Self {
        Tx { stm, th }
    }

    /// Validate the read set against the current lock words. Locks owned by
    /// this transaction validate trivially.
    fn validate(&mut self, ctx: &mut Ctx<'_>) -> bool {
        for i in 0..self.th.read_set.len() {
            let (la, ver) = self.th.read_set[i];
            let l = ctx.read_u64(la);
            if is_locked(l) {
                if !self.th.lockset.contains(la) {
                    return false;
                }
            } else if version_of(l) != ver {
                return false;
            }
        }
        true
    }

    /// Timestamp extension: re-validate and move the snapshot forward.
    fn extend(&mut self, ctx: &mut Ctx<'_>) -> Result<(), Abort> {
        let now = ctx.read_u64(self.stm.clock_addr);
        if self.validate(ctx) {
            self.th.rv = now;
            self.th.stats.extensions += 1;
            Ok(())
        } else {
            Err(Abort::Conflict(AbortCause::Validation))
        }
    }

    /// Transactional read of the aligned word at `addr`.
    pub fn read(&mut self, ctx: &mut Ctx<'_>, addr: u64) -> Result<u64, Abort> {
        self.th.stats.reads += 1;
        ctx.tick(4);
        if let Some(i) = self.th.wmap.get(addr) {
            return Ok(self.th.write_entries[i as usize].1); // read-own-write
        }
        let la = self.stm.lock_addr_for(addr);
        let l = ctx.read_u64(la);
        if is_locked(l) {
            if owner_of(l) == self.th.tid as u64 {
                // We own the stripe (wrote a *different* word in it); the
                // word itself is unmodified in memory (write-back).
                return Ok(ctx.read_u64(addr));
            }
            return Err(Abort::Conflict(AbortCause::ReadLocked));
        }
        let (v, l2) = ctx.read_u64_pair(addr, la);
        if l2 != l {
            return Err(Abort::Conflict(AbortCause::ReadRace));
        }
        let ver = version_of(l);
        if ver > self.th.rv && self.stm.cfg.bug != crate::InjectedBug::SkipReadValidation {
            self.extend(ctx)?;
        }
        self.th.read_set.push((la, ver));
        Ok(v)
    }

    /// Transactional write of the aligned word at `addr` (value buffered
    /// until commit). Under ETL the stripe lock is acquired here; under CTL
    /// acquisition waits for commit.
    pub fn write(&mut self, ctx: &mut Ctx<'_>, addr: u64, val: u64) -> Result<(), Abort> {
        self.th.stats.writes += 1;
        ctx.tick(4);
        if let Some(i) = self.th.wmap.get(addr) {
            self.th.write_entries[i as usize].1 = val;
            return Ok(());
        }
        if self.stm.cfg.design == LockDesign::Etl {
            let la = self.stm.lock_addr_for(addr);
            if !self.th.lockset.contains(la) {
                let l = ctx.read_u64(la);
                if is_locked(l) {
                    // Cannot be us: our locks are all in `lockset`.
                    return Err(Abort::Conflict(AbortCause::WriteLocked));
                }
                // The stripe may have been committed to after our snapshot —
                // possibly by a transaction that invalidated something we
                // already read. Extend (re-validating the read set) before
                // taking ownership, or this transaction could commit stale
                // reads and lose updates.
                if version_of(l) > self.th.rv
                    && self.stm.cfg.bug != crate::InjectedBug::SkipWriteValidation
                {
                    self.extend(ctx)?;
                }
                if ctx.cas_u64(la, l, locked_word(self.th.tid)).is_err() {
                    return Err(Abort::Conflict(AbortCause::WriteLocked));
                }
                self.th.locks_held.push((la, version_of(l)));
                self.th.lockset.insert(la, 0);
            }
            if self.stm.cfg.write_mode == WriteMode::Through {
                // Write-through: memory is updated in place under the
                // stripe lock; the pre-image goes to the undo log.
                let old = ctx.read_u64(addr);
                self.th.undo.push((addr, old));
                ctx.write_u64(addr, val);
                return Ok(());
            }
        }
        self.th
            .wmap
            .insert(addr, self.th.write_entries.len() as u32);
        self.th.write_entries.push((addr, val));
        Ok(())
    }

    /// CTL commit prelude: acquire every write-set stripe lock in one
    /// burst (TL2-style). Returns false (caller aborts) if any stripe is
    /// locked or was committed to after an unextendable snapshot.
    fn acquire_write_locks(&mut self, ctx: &mut Ctx<'_>) -> bool {
        for i in 0..self.th.write_entries.len() {
            let (addr, _) = self.th.write_entries[i];
            let la = self.stm.lock_addr_for(addr);
            if self.th.lockset.contains(la) {
                continue;
            }
            let l = ctx.read_u64(la);
            if is_locked(l)
                || version_of(l) > self.th.rv
                || ctx.cas_u64(la, l, locked_word(self.th.tid)).is_err()
            {
                return false;
            }
            self.th.locks_held.push((la, version_of(l)));
            self.th.lockset.insert(la, 0);
        }
        true
    }

    /// Read-modify-write helper.
    pub fn update(
        &mut self,
        ctx: &mut Ctx<'_>,
        addr: u64,
        f: impl FnOnce(u64) -> u64,
    ) -> Result<(), Abort> {
        let v = self.read(ctx, addr)?;
        self.write(ctx, addr, f(v))
    }

    /// Transactional allocation: undone if the transaction aborts. Served
    /// from the object cache when the §6.2 optimization is enabled.
    pub fn malloc(&mut self, ctx: &mut Ctx<'_>, size: u64) -> u64 {
        self.th.stats.tx_mallocs += 1;
        let addr = if let Some(cache) = &mut self.th.cache {
            match cache.take(size) {
                Some(a) => {
                    self.th.stats.cache_hits += 1;
                    ctx.tick(8); // cache lookup instead of allocator call
                    a
                }
                None => self.stm.allocator.malloc(ctx, size),
            }
        } else {
            self.stm.allocator.malloc(ctx, size)
        };
        if self.th.cache.is_some() {
            self.stm.sizes.insert(addr, size);
        }
        self.th.tx_allocs.push((addr, size));
        addr
    }

    /// Transactional free: deferred to commit time (paper §2); dropped if
    /// the transaction aborts.
    pub fn free(&mut self, _ctx: &mut Ctx<'_>, addr: u64) {
        self.th.stats.tx_frees += 1;
        self.th.tx_frees.push(addr);
    }

    /// Attempt to commit; returns false when commit-time validation fails
    /// (the caller rolls back and retries).
    pub(crate) fn commit(&mut self, ctx: &mut Ctx<'_>) -> bool {
        ctx.tick(12);
        if self.stm.cfg.design == LockDesign::Ctl
            && !self.th.write_entries.is_empty()
            && !self.acquire_write_locks(ctx)
        {
            return false;
        }
        if self.th.locks_held.is_empty() {
            debug_assert!(self.th.undo.is_empty());
            // Read-only (or empty) transaction: the snapshot was consistent
            // throughout; commit without touching the clock.
            let ts = if self.th.tx_frees.is_empty() {
                0
            } else {
                ctx.read_u64(self.stm.clock_addr)
            };
            self.finalize_memory(ts);
            self.th.stats.commits += 1;
            return true;
        }
        let wv = ctx.fetch_add_u64(self.stm.clock_addr, 1) + 1;
        if self.th.rv + 1 != wv && !self.validate(ctx) {
            return false;
        }
        // Write back the redo log (a no-op under write-through, where
        // memory already holds the new values), then release locks with
        // the new version.
        for i in 0..self.th.write_entries.len() {
            let (addr, val) = self.th.write_entries[i];
            ctx.write_u64(addr, val);
        }
        self.th.undo.clear();
        for i in 0..self.th.locks_held.len() {
            let (la, _) = self.th.locks_held[i];
            ctx.write_u64(la, wv << 1);
        }
        self.finalize_memory(wv);
        self.th.stats.commits += 1;
        true
    }

    /// Commit-time memory management: deferred frees enter the limbo list
    /// stamped with the commit timestamp (they reach the allocator or the
    /// object cache after quiescence); allocations become permanent.
    fn finalize_memory(&mut self, ts: u64) {
        let frees = std::mem::take(&mut self.th.tx_frees);
        for addr in frees {
            let size = if self.th.cache.is_some() {
                self.stm.sizes.get(addr)
            } else {
                None
            };
            self.th.limbo.push((ts, addr, size));
        }
        self.th.tx_allocs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_word_encoding() {
        assert!(is_locked(locked_word(3)));
        assert_eq!(owner_of(locked_word(3)), 3);
        assert!(!is_locked(7 << 1));
        assert_eq!(version_of(7 << 1), 7);
        assert_eq!(version_of(0), 0);
        assert!(!is_locked(0));
    }
}
