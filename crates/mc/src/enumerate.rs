//! Bounded-depth exhaustive schedule enumeration with conflict pruning.
//!
//! The schedule space is the set of delay vectors whose *support* (the
//! points with a non-zero delay) has size at most `depth`, with each
//! non-zero delay drawn from a small magnitude alphabet. The enumerator
//! sweeps it in order of increasing support size (iterative deepening —
//! a violation is always found at its minimal support), restricting the
//! support to the conflict-active points computed by [`crate::conflict`]
//! and accounting for every schedule the restriction skipped in the
//! `pruned` counter, so a report can never silently shrink its coverage
//! claim.

use crate::conflict;
use crate::program::{run_schedule, McProgram, RunConfig};

/// Shape of one bounded-exhaustive sweep.
#[derive(Clone, Debug)]
pub struct EnumConfig {
    /// Maximum support size (number of simultaneously delayed points).
    pub depth: usize,
    /// Non-zero delay magnitudes to try at each supported point.
    pub magnitudes: Vec<u64>,
    /// Hard cap on executed schedules; the sweep stops (without verdict
    /// inflation) when it is reached.
    pub max_schedules: u64,
    /// Restrict supports to conflict-active points. Sound for the
    /// transfer programs (see DESIGN.md); the AllocSwap program forces
    /// this off via its all-conflicting footprints.
    pub prune: bool,
}

impl Default for EnumConfig {
    fn default() -> Self {
        EnumConfig {
            depth: 2,
            magnitudes: vec![400],
            max_schedules: 200_000,
            prune: true,
        }
    }
}

/// What a sweep did: how many schedules ran, how many the conflict
/// relation removed from the bounded space, and whether the cap stopped
/// the sweep early.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnumStats {
    /// Schedules executed.
    pub explored: u64,
    /// Schedules in the bounded space skipped by pruning.
    pub pruned: u64,
    /// Schedules skipped by the checkpointed explorer's state-fingerprint
    /// dedup ([`crate::explore::explore`]); always 0 for the from-scratch
    /// enumerator. An uncapped sweep satisfies `explored + pruned +
    /// deduped == space_size`.
    pub deduped: u64,
    /// True when `max_schedules` stopped the sweep before the bounded
    /// space was covered.
    pub capped: bool,
}

pub(crate) fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let mut r: u128 = 1;
    for i in 0..k.min(n - k) {
        r = r * (n - i) as u128 / (i + 1) as u128;
    }
    r.min(u64::MAX as u128) as u64
}

/// Schedules the pruning removed: for each support size `k`, the
/// supports over all `points` minus the supports over the `active`
/// subset, times the `m^k` magnitude assignments.
pub(crate) fn pruned_count(points: u64, active: u64, depth: usize, m: u64) -> u64 {
    let mut total: u128 = 0;
    let mut mk: u128 = 1;
    for k in 1..=depth as u64 {
        mk = mk.saturating_mul(m as u128);
        let skipped = (binomial(points, k) - binomial(active, k)) as u128;
        total = total.saturating_add(skipped.saturating_mul(mk));
    }
    total.min(u64::MAX as u128) as u64
}

/// Exhaustively explore the bounded schedule space for `program` under
/// `cfg`. Returns the sweep statistics and, if any schedule violated an
/// invariant, the raw (unshrunk) delay vector with the violation detail;
/// `stats.explored` at that moment is the 1-based index of the witness.
pub fn enumerate(
    program: &McProgram,
    cfg: &RunConfig,
    ecfg: &EnumConfig,
) -> (EnumStats, Option<(Vec<u64>, String)>) {
    let points = program.points();
    let support_pool: Vec<usize> = if ecfg.prune {
        conflict::active_points(program)
    } else {
        (0..points).collect()
    };
    let mut stats = EnumStats {
        pruned: pruned_count(
            points as u64,
            support_pool.len() as u64,
            ecfg.depth,
            ecfg.magnitudes.len() as u64,
        ),
        ..EnumStats::default()
    };

    let mut delays = vec![0u64; points];
    // Support size 0: the undisturbed schedule.
    stats.explored += 1;
    if let Err(detail) = run_schedule(program, cfg, &delays) {
        return (stats, Some((delays, detail)));
    }

    for k in 1..=ecfg.depth.min(support_pool.len()) {
        // Lexicographic k-combinations over the (degree-ordered) pool.
        let mut combo: Vec<usize> = (0..k).collect();
        loop {
            // Mixed-radix sweep over the magnitude assignments.
            let m = ecfg.magnitudes.len();
            let mut assign = vec![0usize; k];
            loop {
                if stats.explored >= ecfg.max_schedules {
                    stats.capped = true;
                    return (stats, None);
                }
                for (slot, &mag_idx) in combo.iter().zip(assign.iter()) {
                    delays[support_pool[*slot]] = ecfg.magnitudes[mag_idx];
                }
                stats.explored += 1;
                let r = run_schedule(program, cfg, &delays);
                for slot in &combo {
                    delays[support_pool[*slot]] = 0;
                }
                if let Err(detail) = r {
                    let mut witness = vec![0u64; points];
                    for (slot, &mag_idx) in combo.iter().zip(assign.iter()) {
                        witness[support_pool[*slot]] = ecfg.magnitudes[mag_idx];
                    }
                    return (stats, Some((witness, detail)));
                }
                // Advance the magnitude counter.
                let mut i = 0;
                loop {
                    if i == k {
                        break;
                    }
                    assign[i] += 1;
                    if assign[i] < m {
                        break;
                    }
                    assign[i] = 0;
                    i += 1;
                }
                if i == k {
                    break;
                }
            }
            // Advance the combination; fall through to the next support
            // size when this one is exhausted.
            let mut advanced = false;
            let mut i = k;
            while i > 0 {
                i -= 1;
                if combo[i] < support_pool.len() - (k - i) {
                    combo[i] += 1;
                    for j in i + 1..k {
                        combo[j] = combo[j - 1] + 1;
                    }
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }
    }
    (stats, None)
}

/// Number of schedules a full (uncapped) sweep would execute — the
/// coverage denominator quoted in reports: `1 + Σ_{k=1..depth}
/// C(supports, k) · m^k`.
pub fn space_size(supports: u64, depth: usize, magnitudes: usize) -> u64 {
    let mut total: u128 = 1;
    let mut mk: u128 = 1;
    for k in 1..=depth as u64 {
        mk = mk.saturating_mul(magnitudes as u128);
        total = total.saturating_add((binomial(supports, k) as u128).saturating_mul(mk));
    }
    total.min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramKind;
    use tm_check::TransferProgram;

    fn small() -> McProgram {
        McProgram {
            base: TransferProgram {
                threads: 3,
                cells: 2,
                txns: 2,
                ..TransferProgram::default()
            },
            kind: ProgramKind::Transfer,
        }
    }

    #[test]
    fn binomials() {
        assert_eq!(binomial(6, 0), 1);
        assert_eq!(binomial(6, 2), 15);
        assert_eq!(binomial(6, 3), 20);
        assert_eq!(binomial(3, 5), 0);
    }

    #[test]
    fn space_size_matches_explored_plus_pruned() {
        let p = small();
        let ecfg = EnumConfig {
            depth: 2,
            magnitudes: vec![200, 400],
            ..EnumConfig::default()
        };
        let (stats, found) = enumerate(&p, &RunConfig::clean(), &ecfg);
        assert!(found.is_none(), "{found:?}");
        assert!(!stats.capped);
        assert_eq!(
            stats.explored + stats.pruned,
            space_size(p.points() as u64, ecfg.depth, ecfg.magnitudes.len())
        );
    }

    #[test]
    fn cap_stops_the_sweep() {
        let p = small();
        let ecfg = EnumConfig {
            depth: 2,
            max_schedules: 5,
            ..EnumConfig::default()
        };
        let (stats, found) = enumerate(&p, &RunConfig::clean(), &ecfg);
        assert!(found.is_none());
        assert!(stats.capped);
        assert_eq!(stats.explored, 5);
    }

    #[test]
    fn zero_depth_runs_only_the_zero_schedule() {
        let p = small();
        let ecfg = EnumConfig {
            depth: 0,
            ..EnumConfig::default()
        };
        let (stats, found) = enumerate(&p, &RunConfig::clean(), &ecfg);
        assert!(found.is_none());
        assert_eq!(stats.explored, 1);
        assert_eq!(stats.pruned, 0);
    }
}
