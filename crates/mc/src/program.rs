//! The programs under systematic exploration and the single-schedule
//! runner that executes them and checks every invariant.
//!
//! A *program* here is a closed transactional workload whose correctness
//! is a small set of decidable end-state invariants: token conservation,
//! snapshot consistency as observed by a read-only witness thread, and a
//! released serialization token. A *schedule* is one virtual-cycle delay
//! per scheduling point, served to the workload through the simulator's
//! scheduling-point hook ([`tm_sim::Sim::set_sched_hook`]); because the
//! whole stack is deterministic in virtual time, `(program, config,
//! schedule)` fully determines the execution, and any violation replays.

use std::panic::{AssertUnwindSafe, PanicHookInfo};
use std::sync::{Arc, Mutex};

use tm_alloc::{Allocator as _, AllocatorKind};
use tm_check::TransferProgram;
use tm_sim::{MachineConfig, Sim, FUEL_EXHAUSTED};
use tm_stm::{BackendKind, CmKind, InjectedBug, Stm, StmConfig};

/// Base address of the token-cell array (one ORT stripe per cell).
pub(crate) const BASE: u64 = 0x4000_0000;
/// Byte stride between token cells (distinct ownership-table stripes).
pub(crate) const STRIDE: u64 = 4096;
/// Size of the heap nodes allocated by the [`ProgramKind::AllocSwap`]
/// and [`ProgramKind::Oom`] workloads.
pub(crate) const NODE_SIZE: u64 = 64;

/// Which transactional workload a schedule drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgramKind {
    /// The `tm-check` token-transfer program: every thread transfers
    /// LCG-derived amounts between token cells. Catches lost updates
    /// (write-validation and snapshot bugs) via conservation.
    Transfer,
    /// Same transfers, but thread 0 is a read-only *observer* that sums
    /// all cells inside one transaction per round. A committed observer
    /// sum different from the invariant total is a torn snapshot —
    /// exactly what read-validation bugs leak and what write-path
    /// validation masks in the plain transfer program.
    TransferObserver,
    /// Transfers over heap-allocated nodes: each cell is a *slot* holding
    /// a pointer to an immutable 64-byte node carrying the tokens; a
    /// transfer allocates two fresh nodes, republishes both slots, and
    /// transactionally frees the old nodes. Catches transactional
    /// allocation bugs (early free, missing quiescence) as conservation
    /// breaks or allocator panics.
    AllocSwap,
    /// The [`ProgramKind::AllocSwap`] transfers rebuilt on the *fallible*
    /// allocation plane: every node comes from [`tm_stm::Tx::try_malloc`]
    /// inside [`tm_stm::Stm::try_txn`], so an allocation failure becomes
    /// a clean `AllocFailed` abort and — past the contention manager's
    /// retry budget — a propagated error that turns the whole transfer
    /// into a no-op. Conservation must hold whether a transfer commits,
    /// retries, or gives up; this is the oracle program of the every-site
    /// OOM sweep ([`crate::oom`]).
    Oom,
}

impl ProgramKind {
    /// Stable lower-case report token.
    pub fn name(self) -> &'static str {
        match self {
            ProgramKind::Transfer => "transfer",
            ProgramKind::TransferObserver => "transfer-observer",
            ProgramKind::AllocSwap => "alloc-swap",
            ProgramKind::Oom => "oom",
        }
    }
}

/// A program under exploration: the transfer shape plus which workload
/// variant interprets it. For [`ProgramKind::TransferObserver`], thread 0
/// is the observer and threads `1..threads` run transfers.
#[derive(Clone, Copy, Debug)]
pub struct McProgram {
    /// Thread/cell/transaction shape (shared with `tm-check`).
    pub base: TransferProgram,
    /// Workload variant.
    pub kind: ProgramKind,
}

impl McProgram {
    /// Scheduling points a schedule must cover: one per `(thread, txn)`.
    pub fn points(&self) -> usize {
        self.base.points()
    }

    /// The conserved token total.
    pub fn expected_total(&self) -> u64 {
        self.base.expected_total()
    }
}

/// The fixed configuration a schedule is explored under.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Dynamic memory allocator backing the STM.
    pub alloc: AllocatorKind,
    /// Concurrency-control backend.
    pub backend: BackendKind,
    /// Contention-management policy.
    pub cm: CmKind,
    /// Seeded defect (or [`InjectedBug::None`] for the clean STM).
    pub bug: InjectedBug,
    /// Static allocation-fault plan applied to the whole run (the
    /// `tmstudy mc --alloc-fault` knob). [`tm_alloc::AllocFaultPlan::None`]
    /// — the default — builds the exact historical allocator stack with
    /// no injector wrapper, keeping artifacts byte-identical; anything
    /// else interposes a [`tm_alloc::FaultInjector`] under the STM. The
    /// every-site OOM sweep ([`crate::oom`]) does *not* use this field:
    /// it owns its injector so it can re-plan between checkpoint
    /// restores.
    pub alloc_fault: tm_alloc::AllocFaultPlan,
    /// Scheduler-event budget: a run that exceeds it is reported as a
    /// livelock violation instead of hanging the explorer.
    pub fuel: u64,
}

impl RunConfig {
    /// The clean STM under the paper's default configuration, with a
    /// fuel budget generous enough for any terminating schedule of the
    /// small programs explored here.
    pub fn clean() -> RunConfig {
        RunConfig {
            alloc: AllocatorKind::TbbMalloc,
            backend: BackendKind::Etl,
            cm: CmKind::Suicide,
            bug: InjectedBug::None,
            alloc_fault: tm_alloc::AllocFaultPlan::None,
            fuel: 2_000_000,
        }
    }
}

/// Refcounted process-global silencer for panic *printing*. Exploring a
/// seeded mutant deliberately panics hundreds of times (allocator
/// double-frees, fuel exhaustion) while the schedule space is swept and
/// the counterexample shrunk; without this the default hook floods
/// stderr with backtraces for panics the runner catches and classifies.
/// Propagation is untouched — only the hook's printing is suppressed.
pub(crate) struct QuietPanics;

type PanicHook = Box<dyn for<'a> Fn(&PanicHookInfo<'a>) + Send + Sync>;

struct QuietState {
    depth: usize,
    prev: Option<PanicHook>,
}

static QUIET: Mutex<QuietState> = Mutex::new(QuietState {
    depth: 0,
    prev: None,
});

impl QuietPanics {
    pub(crate) fn enter() -> QuietPanics {
        let mut g = QUIET.lock().unwrap();
        g.depth += 1;
        if g.depth == 1 {
            g.prev = Some(std::panic::take_hook());
            if std::env::var("TM_MC_LOUD").is_err() {
                std::panic::set_hook(Box::new(|_| {}));
            }
        }
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        let mut g = QUIET.lock().unwrap();
        g.depth -= 1;
        if g.depth == 0 {
            if let Some(prev) = g.prev.take() {
                std::panic::set_hook(prev);
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Turn a caught panic payload into the runner's verdict string: fuel
/// exhaustion is a livelock, anything else a plain panic. Shared by the
/// from-scratch runner and the checkpointed [`crate::explore::Session`]
/// so both classify identically.
pub(crate) fn classify_panic(payload: &(dyn std::any::Any + Send)) -> String {
    let msg = panic_message(payload);
    if msg.starts_with(FUEL_EXHAUSTED) {
        format!("livelock: {msg}")
    } else {
        format!("panic: {msg}")
    }
}

/// Execute `program` under one delay vector and check every end-state
/// invariant. `Ok(())` means the schedule exposed nothing; `Err` carries
/// the violated invariant (or the classified panic) as evidence. Fully
/// deterministic in its inputs.
pub fn run_schedule(program: &McProgram, cfg: &RunConfig, delays: &[u64]) -> Result<(), String> {
    assert_eq!(delays.len(), program.points(), "schedule arity");
    let _quiet = QuietPanics::enter();
    match std::panic::catch_unwind(AssertUnwindSafe(|| run_inner(program, cfg, delays))) {
        Ok(r) => r,
        Err(payload) => Err(classify_panic(payload.as_ref())),
    }
}

/// Install the delay-vector scheduling hook: point `t` of thread `tid`
/// maps to `delays[tid * txns + t]`.
pub(crate) fn install_hook(sim: &Sim, txns: usize, delays: &[u64]) {
    let table: Arc<Vec<u64>> = Arc::new(delays.to_vec());
    sim.set_sched_hook(Arc::new(move |tid, point| {
        table[tid * txns + point as usize]
    }));
}

/// Build the allocator + STM stack for one run configuration on `sim`.
/// A non-`None` [`RunConfig::alloc_fault`] plan interposes a
/// [`tm_alloc::FaultInjector`]; the `None` plan builds the bare
/// allocator, so default runs keep the exact historical call chain.
pub(crate) fn build_stack(sim: &Sim, cfg: &RunConfig) -> (Arc<dyn tm_alloc::Allocator>, Arc<Stm>) {
    let alloc: Arc<dyn tm_alloc::Allocator> = match cfg.alloc_fault {
        tm_alloc::AllocFaultPlan::None => cfg.alloc.build(sim),
        plan => tm_alloc::FaultInjector::new(cfg.alloc.build(sim), plan),
    };
    let stm = Arc::new(Stm::new(
        sim,
        Arc::clone(&alloc),
        StmConfig {
            backend: cfg.backend,
            cm: cfg.cm,
            bug: cfg.bug,
            ..StmConfig::default()
        },
    ));
    (alloc, stm)
}

/// Seed the heap: either tokens directly in the cells, or (AllocSwap)
/// slots pointing at freshly allocated nodes carrying the tokens. Never
/// consults the scheduling hook, so the seeded state is independent of
/// the delay vector — the property the checkpointed explorer's shared
/// root snapshot rests on.
pub(crate) fn seed_heap(program: &McProgram, sim: &Sim, alloc: &Arc<dyn tm_alloc::Allocator>) {
    let p = program.base;
    match program.kind {
        ProgramKind::Transfer | ProgramKind::TransferObserver => {
            sim.with_state(|m| {
                for c in 0..p.cells {
                    m.write_u64(BASE + c * STRIDE, TransferProgram::INITIAL_TOKENS);
                }
            });
        }
        ProgramKind::AllocSwap | ProgramKind::Oom => {
            sim.run(1, |ctx| {
                for c in 0..p.cells {
                    let node = alloc.malloc(ctx, NODE_SIZE);
                    ctx.write_u64(node, TransferProgram::INITIAL_TOKENS);
                    ctx.write_u64(BASE + c * STRIDE, node);
                }
            });
        }
    }
}

fn run_inner(program: &McProgram, cfg: &RunConfig, delays: &[u64]) -> Result<(), String> {
    let p = program.base;
    let sim = Sim::new(MachineConfig::xeon_e5405());
    sim.set_fuel(cfg.fuel);
    install_hook(&sim, p.txns as usize, delays);
    let (alloc, stm) = build_stack(&sim, cfg);
    seed_heap(program, &sim, &alloc);
    main_phase(program, &sim, &stm)
}

/// The concurrent phase plus every end-state invariant, starting from a
/// seeded heap at quiescence. This is the part of a run the checkpointed
/// explorer repeats per schedule; everything above it (construction and
/// seeding) is captured once in the session's root checkpoint.
pub(crate) fn main_phase(program: &McProgram, sim: &Sim, stm: &Arc<Stm>) -> Result<(), String> {
    let p = program.base;
    // Torn snapshots the observer committed, recorded host-side.
    let torn: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let expected = program.expected_total();

    sim.run(p.threads, |ctx| {
        let tid = ctx.tid();
        let mut th = stm.thread(tid);
        if program.kind == ProgramKind::TransferObserver && tid == 0 {
            for t in 0..p.txns {
                let sum = stm.txn(ctx, &mut th, |tx, ctx| {
                    let mut s = tx.read(ctx, BASE)?;
                    // The scheduling point: widen the window between the
                    // first cell read and the rest of the snapshot.
                    ctx.sched_point(t);
                    for c in 1..p.cells {
                        s = s.wrapping_add(tx.read(ctx, BASE + c * STRIDE)?);
                    }
                    Ok(s)
                });
                if sum != expected {
                    torn.lock().unwrap().push(format!(
                        "observer txn {t} committed torn snapshot: total {sum} != {expected}"
                    ));
                }
            }
        } else {
            let mut x = p.seed ^ (tid as u64).wrapping_mul(0x9e3779b97f4a7c15);
            for t in 0..p.txns {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let from = BASE + (x % p.cells) * STRIDE;
                let to = BASE + ((x >> 8) % p.cells) * STRIDE;
                let amt = (x >> 16) % 7;
                match program.kind {
                    ProgramKind::AllocSwap => {
                        stm.txn(ctx, &mut th, |tx, ctx| {
                            let fp = tx.read(ctx, from)?;
                            let tp = tx.read(ctx, to)?;
                            let fv = tx.read(ctx, fp)?;
                            let tv = tx.read(ctx, tp)?;
                            ctx.sched_point(t);
                            if from != to && fv >= amt {
                                // Free-then-republish is legal under the
                                // STM's deferred-free semantics (frees
                                // apply at commit, are dropped on abort).
                                // An eager free applied from a stale
                                // snapshot instead double-frees nodes the
                                // winning transaction already released.
                                tx.free(ctx, fp);
                                tx.free(ctx, tp);
                                let nf = tx.malloc(ctx, NODE_SIZE);
                                let nt = tx.malloc(ctx, NODE_SIZE);
                                tx.write(ctx, nf, fv - amt)?;
                                tx.write(ctx, nt, tv + amt)?;
                                tx.write(ctx, from, nf)?;
                                tx.write(ctx, to, nt)?;
                            }
                            Ok(())
                        });
                    }
                    ProgramKind::Oom => {
                        // Same transfer on the fallible plane. A transfer
                        // whose allocation fails past the CM's retry
                        // budget propagates an error here and becomes a
                        // no-op — conservation must hold either way, so
                        // the error itself is deliberately dropped.
                        let _ = stm.try_txn(ctx, &mut th, |tx, ctx| {
                            let fp = tx.read(ctx, from)?;
                            let tp = tx.read(ctx, to)?;
                            let fv = tx.read(ctx, fp)?;
                            let tv = tx.read(ctx, tp)?;
                            ctx.sched_point(t);
                            if from != to && fv >= amt {
                                tx.free(ctx, fp);
                                tx.free(ctx, tp);
                                let nf = tx.try_malloc(ctx, NODE_SIZE)?;
                                let nt = tx.try_malloc(ctx, NODE_SIZE)?;
                                tx.write(ctx, nf, fv - amt)?;
                                tx.write(ctx, nt, tv + amt)?;
                                tx.write(ctx, from, nf)?;
                                tx.write(ctx, to, nt)?;
                            }
                            Ok(())
                        });
                    }
                    _ => {
                        stm.txn(ctx, &mut th, |tx, ctx| {
                            let f = tx.read(ctx, from)?;
                            let v = tx.read(ctx, to)?;
                            // The scheduling point: widen the read→write
                            // window.
                            ctx.sched_point(t);
                            if from != to && f >= amt {
                                tx.write(ctx, from, f - amt)?;
                                tx.write(ctx, to, v + amt)?;
                            }
                            Ok(())
                        });
                    }
                }
            }
        }
        stm.retire(th);
    });

    // Invariant 1: the serialization token is free at quiescence.
    let token = stm.serialize_token_addr();
    if token != 0 {
        let holder = sim.with_state(|m| m.read_u64(token));
        if holder != 0 {
            return Err(format!(
                "serialize token leaked: still held by thread slot {holder} after quiescence"
            ));
        }
    }

    // Invariant 2: the observer never committed a torn snapshot.
    if let Some(first) = torn.lock().unwrap().first() {
        return Err(first.clone());
    }

    // Invariant 3: token conservation.
    let total = sim.with_state(|m| {
        (0..p.cells)
            .map(|c| {
                let slot = BASE + c * STRIDE;
                match program.kind {
                    ProgramKind::AllocSwap | ProgramKind::Oom => {
                        let node = m.read_u64(slot);
                        m.read_u64(node)
                    }
                    _ => m.read_u64(slot),
                }
            })
            .fold(0u64, u64::wrapping_add)
    });
    if total != expected {
        return Err(format!(
            "conservation violated: total {total} != {expected}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(kind: ProgramKind) -> McProgram {
        McProgram {
            base: TransferProgram::default(),
            kind,
        }
    }

    #[test]
    fn zero_schedule_is_clean_for_every_kind() {
        for kind in [
            ProgramKind::Transfer,
            ProgramKind::TransferObserver,
            ProgramKind::AllocSwap,
            ProgramKind::Oom,
        ] {
            let p = program(kind);
            let r = run_schedule(&p, &RunConfig::clean(), &vec![0; p.points()]);
            assert_eq!(r, Ok(()), "{kind:?}");
        }
    }

    #[test]
    fn clean_run_matches_tm_check_runner() {
        // The mc Transfer runner and tm-check's run_transfers execute the
        // same program; both must conserve under the same delay vector.
        let p = program(ProgramKind::Transfer);
        let delays: Vec<u64> = (0..p.points() as u64).map(|i| (i * 37) % 400).collect();
        assert_eq!(run_schedule(&p, &RunConfig::clean(), &delays), Ok(()));
        let total = tm_check::explore::run_transfers(
            &p.base,
            &tm_check::Schedule(delays.clone()),
            InjectedBug::None,
        );
        assert_eq!(total, p.expected_total());
    }

    #[test]
    fn static_fault_plan_spares_the_fallible_plane_only() {
        // Fail the first main-phase allocation (the seed owns sites
        // 0..cells). The Oom program absorbs it as a clean retry; the
        // panicking AllocSwap plane cannot.
        let fallible = program(ProgramKind::Oom);
        let cfg = RunConfig {
            alloc_fault: tm_alloc::AllocFaultPlan::NthSite(fallible.base.cells),
            ..RunConfig::clean()
        };
        let r = run_schedule(&fallible, &cfg, &vec![0; fallible.points()]);
        assert_eq!(r, Ok(()), "one injected failure must be retried away");

        let panicking = program(ProgramKind::AllocSwap);
        let r = run_schedule(&panicking, &cfg, &vec![0; panicking.points()]);
        let err = r.unwrap_err();
        assert!(err.starts_with("panic:"), "{err}");
        assert!(err.contains("transactional malloc"), "{err}");
    }

    #[test]
    fn fuel_exhaustion_is_classified_as_livelock() {
        let p = program(ProgramKind::Transfer);
        let cfg = RunConfig {
            fuel: 50,
            ..RunConfig::clean()
        };
        let err = run_schedule(&p, &cfg, &vec![0; p.points()]).unwrap_err();
        assert!(err.starts_with("livelock:"), "{err}");
    }

    #[test]
    fn all_backends_and_cms_conserve_on_zero_schedule() {
        let p = program(ProgramKind::Transfer);
        for backend in BackendKind::ALL {
            for cm in CmKind::ALL {
                let cfg = RunConfig {
                    backend,
                    cm,
                    ..RunConfig::clean()
                };
                let r = run_schedule(&p, &cfg, &vec![0; p.points()]);
                assert_eq!(r, Ok(()), "{backend:?}/{cm:?}");
            }
        }
    }
}
