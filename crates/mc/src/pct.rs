//! PCT-style randomized priority scheduling for depths the bounded
//! exhaustive sweep cannot reach.
//!
//! Probabilistic Concurrency Testing (Burckhardt et al., ASPLOS 2010)
//! runs each trial under random thread priorities with `d − 1` random
//! priority *change points*, and guarantees any bug of depth `d` is hit
//! with probability at least `1 / (n · k^{d−1})` per trial (`n` threads,
//! `k` scheduling points). The virtual-time analogue here maps priority
//! rank to a per-point base delay (lower priority ⇒ longer delay at
//! every scheduling point, so higher-priority threads run ahead) and a
//! change point to one large extra delay that demotes its thread
//! mid-run. The mapping is an approximation — delays stack with the
//! STM's own backoff rather than replacing the scheduler — but it keeps
//! PCT's shape: each trial is cheap, derived from `(seed, trial)` alone,
//! and any violating trial is already a delay vector ready for the
//! shrinker.

use crate::program::{run_schedule, McProgram, RunConfig};

/// Shape of one randomized priority sweep.
#[derive(Clone, Copy, Debug)]
pub struct PctConfig {
    /// Independent trials to run.
    pub trials: u64,
    /// Targeted bug depth `d`: each trial inserts `d − 1` change points.
    pub depth: usize,
    /// Base delay unit; thread with priority rank `r` waits `r · quantum`
    /// at every scheduling point.
    pub quantum: u64,
    /// Stream seed; trial `i` derives its randomness from `(seed, i)`.
    pub seed: u64,
}

impl Default for PctConfig {
    fn default() -> Self {
        PctConfig {
            trials: 64,
            depth: 2,
            quantum: 400,
            seed: 0x9c7,
        }
    }
}

/// splitmix64 — the statelessly seedable PRNG used for trial derivation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The delay vector for one PCT trial — exposed for determinism tests.
pub fn trial_schedule(program: &McProgram, cfg: &PctConfig, trial: u64) -> Vec<u64> {
    let p = program.base;
    let points = program.points();
    let txns = p.txns as usize;
    let mut state = mix(cfg.seed ^ trial.wrapping_mul(0xd1b54a32d192ed03));
    let mut next = || {
        state = mix(state);
        state
    };
    // Random priority permutation (Fisher–Yates); rank 0 runs first.
    let mut rank: Vec<u64> = (0..p.threads as u64).collect();
    for i in (1..rank.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        rank.swap(i, j);
    }
    let mut delays: Vec<u64> = (0..points)
        .map(|i| rank[i / txns.max(1)] * cfg.quantum)
        .collect();
    // d − 1 change points: one large demotion each.
    let boost = cfg.quantum * (p.threads as u64 + 1) * 4;
    for _ in 1..cfg.depth.max(1) {
        if points > 0 {
            let cp = (next() % points as u64) as usize;
            delays[cp] += boost;
        }
    }
    delays
}

/// Run up to `cfg.trials` PCT trials; returns the number of trials run
/// and, on a violation, the raw delay vector with its detail (the trial
/// count at that moment is the 1-based witness index).
pub fn pct_explore(
    program: &McProgram,
    run_cfg: &RunConfig,
    cfg: &PctConfig,
) -> (u64, Option<(Vec<u64>, String)>) {
    for trial in 0..cfg.trials {
        let delays = trial_schedule(program, cfg, trial);
        if let Err(detail) = run_schedule(program, run_cfg, &delays) {
            return (trial + 1, Some((delays, detail)));
        }
    }
    (cfg.trials, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramKind;
    use tm_check::TransferProgram;

    fn program() -> McProgram {
        McProgram {
            base: TransferProgram::default(),
            kind: ProgramKind::Transfer,
        }
    }

    #[test]
    fn trials_are_deterministic_in_seed_and_index() {
        let p = program();
        let cfg = PctConfig::default();
        assert_eq!(trial_schedule(&p, &cfg, 7), trial_schedule(&p, &cfg, 7));
        assert_ne!(trial_schedule(&p, &cfg, 7), trial_schedule(&p, &cfg, 8));
    }

    #[test]
    fn trial_has_rank_structure_and_change_points() {
        let p = program();
        let cfg = PctConfig {
            depth: 3,
            ..PctConfig::default()
        };
        let delays = trial_schedule(&p, &cfg, 0);
        assert_eq!(delays.len(), p.points());
        // Every delay is rank·quantum plus possibly change-point boosts,
        // so all are multiples of the quantum.
        assert!(delays.iter().all(|d| d % cfg.quantum == 0));
        // Some thread has rank 0 and (absent a change point) zero delays.
        let txns = p.base.txns as usize;
        assert!(
            (0..p.base.threads).any(|t| delays[t * txns..(t + 1) * txns].contains(&0)),
            "{delays:?}"
        );
    }

    #[test]
    fn clean_stm_survives_a_pct_sweep() {
        let p = program();
        let (trials, found) = pct_explore(
            &p,
            &RunConfig::clean(),
            &PctConfig {
                trials: 8,
                ..PctConfig::default()
            },
        );
        assert_eq!(trials, 8);
        assert!(found.is_none(), "{found:?}");
    }
}
