//! # tm-mc — systematic schedule exploration over virtual time
//!
//! The simulator executes a fixed interleaving for a given delay vector
//! (one virtual-cycle delay per scheduling point), so the schedule space
//! of a transactional program is *enumerable*: model checking reduces to
//! sweeping delay vectors. This crate layers two sweeps over the
//! deterministic stack and proves they work with a mutation catalog:
//!
//! * [`mod@enumerate`] — bounded-depth **exhaustive enumeration**: every
//!   delay support of up to `depth` scheduling points, in order of
//!   increasing support size, restricted to conflict-*active* points by
//!   the static footprint relation in [`conflict`] (a DPOR-style
//!   persistent-set argument; skipped schedules are counted as `pruned`,
//!   never silently dropped).
//! * [`pct`] — **PCT-style randomized priority** trials for depths the
//!   exhaustive sweep cannot reach, with the classic
//!   `1 / (n · k^{d−1})` detection bound as motivation.
//!
//! Programs and invariants live in [`program`]: token-transfer
//! conservation, a read-only observer that catches torn snapshots, an
//! allocating variant that catches transactional-memory-management bugs,
//! plus serialization-token quiescence and event-fuel livelock
//! detection. Any violating schedule is shrunk with the proptest
//! machinery to a minimal delay vector that still fails — replayable by
//! construction because the whole stack is deterministic.
//!
//! [`catalog`] ties it together: one tuned recipe per
//! [`tm_stm::InjectedBug`] variant (the explorer must catch all of
//! them), a clean sweep across every backend × contention-manager
//! combination (which must stay clean), and builders for the
//! `tm-mc-report/v1` artifact `tmstudy mc` writes.
//!
//! [`mod@oom`] sweeps the orthogonal *allocation-failure* axis: a
//! counting dry run enumerates every allocation site of the fallible
//! [`ProgramKind::Oom`] workload, each site is re-executed from a root
//! checkpoint with exactly that allocation forced to fail, and the
//! `leak-on-alloc-fail` mutant must be caught and shrunk to its minimal
//! failing site. Results ship as the `tm-oom-report/v1` artifact of
//! `tmstudy mc --oom`.

#![deny(missing_docs)]

pub mod catalog;
pub mod conflict;
pub mod enumerate;
pub mod explore;
pub mod oom;
pub mod pct;
pub mod program;

pub use catalog::{
    check_cells, mutation_catalog, quick_clean_config, quick_report, quick_report_opt,
    run_clean_cell, run_clean_cell_fault_opt, run_clean_cell_opt, run_mutant_cell,
    run_mutant_cell_opt, shrink_violation, small_program, sparse_program, MutantRecipe, Strategy,
    SweepWork,
};
pub use conflict::{active_points, footprints, Footprint};
pub use enumerate::{enumerate, space_size, EnumConfig, EnumStats};
pub use explore::{explore, Session, Throughput};
pub use oom::{
    oom_cell, oom_check_cells, oom_program, oom_quick_report, sweep_cell, OomOutcome, OomSession,
};
pub use pct::{pct_explore, trial_schedule, PctConfig};
pub use program::{run_schedule, McProgram, ProgramKind, RunConfig};
