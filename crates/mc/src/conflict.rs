//! The static conflict relation that powers schedule-space pruning.
//!
//! The transfer programs derive every transaction's cell footprint from a
//! per-thread LCG stream, so the read/write footprint of scheduling point
//! `(tid, txn)` is known *statically* — before any schedule runs. Two
//! transactions are **independent** when their footprints are disjoint:
//! they touch different ownership-table stripes, so no order of their
//! commits can change either one's reads, writes, or the end state the
//! invariants inspect. Delaying a transaction that is independent of
//! every other-thread transaction only commutes it past operations it
//! cannot conflict with, producing an execution equivalent (with respect
//! to the checked invariants) to one already in the space — so the
//! enumerator restricts delay support to the *active* points and counts
//! the skipped schedules as `pruned` (a DPOR-style persistent-set
//! argument specialised to this program family; DESIGN.md gives the
//! soundness argument and its caveats).
//!
//! The footprint computation is shared with the program body itself
//! (same LCG, same constants), so the conflict relation cannot drift
//! from what the workload actually does.

use crate::program::{McProgram, ProgramKind};

/// The cells one transaction may read or write.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Footprint {
    /// Touches exactly these cell indices (reads; writes iff they differ).
    Cells(u64, u64),
    /// May touch every cell (the observer) or couples through shared
    /// allocator metadata (AllocSwap) — conflicts with everything.
    All,
}

impl Footprint {
    fn intersects(&self, other: &Footprint) -> bool {
        match (self, other) {
            (Footprint::All, _) | (_, Footprint::All) => true,
            (Footprint::Cells(a, b), Footprint::Cells(c, d)) => {
                a == c || a == d || b == c || b == d
            }
        }
    }
}

/// Per-`(tid, txn)` footprints, row-major like the delay vector: entry
/// `tid * txns + t` is the footprint of thread `tid`'s `t`-th
/// transaction. Replays the exact LCG stream the program body uses.
pub fn footprints(program: &McProgram) -> Vec<Footprint> {
    let p = program.base;
    let mut out = Vec::with_capacity(program.points());
    for tid in 0..p.threads {
        if program.kind == ProgramKind::TransferObserver && tid == 0 {
            out.extend((0..p.txns).map(|_| Footprint::All));
            continue;
        }
        let mut x = p.seed ^ (tid as u64).wrapping_mul(0x9e3779b97f4a7c15);
        for _ in 0..p.txns {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if program.kind == ProgramKind::AllocSwap {
                // Node allocation and freeing couple every transaction
                // through the allocator's shared metadata; treat each as
                // conflicting with all.
                out.push(Footprint::All);
            } else {
                out.push(Footprint::Cells(x % p.cells, (x >> 8) % p.cells));
            }
        }
    }
    out
}

/// Scheduling points worth delaying: point `i` is *active* when its
/// transaction's footprint intersects some transaction of a different
/// thread. The returned indices are sorted by descending conflict degree
/// (how many other-thread transactions intersect) so the enumerator
/// tries the most contended points first — a search-order heuristic
/// only; it does not affect which schedules are eventually covered.
pub fn active_points(program: &McProgram) -> Vec<usize> {
    let fps = footprints(program);
    let txns = program.base.txns as usize;
    let degree: Vec<usize> = (0..fps.len())
        .map(|i| {
            let tid = i / txns.max(1);
            fps.iter()
                .enumerate()
                .filter(|(j, fp)| j / txns.max(1) != tid && fps[i].intersects(fp))
                .count()
        })
        .collect();
    let mut active: Vec<usize> = (0..fps.len()).filter(|&i| degree[i] > 0).collect();
    active.sort_by(|&a, &b| degree[b].cmp(&degree[a]).then(a.cmp(&b)));
    active
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_check::TransferProgram;

    fn transfer(cells: u64) -> McProgram {
        McProgram {
            base: TransferProgram {
                cells,
                ..TransferProgram::default()
            },
            kind: ProgramKind::Transfer,
        }
    }

    #[test]
    fn footprints_cover_every_point_in_row_major_order() {
        let p = transfer(3);
        let fps = footprints(&p);
        assert_eq!(fps.len(), p.points());
        for fp in &fps {
            match fp {
                Footprint::Cells(a, b) => assert!(*a < 3 && *b < 3),
                Footprint::All => panic!("plain transfer has no All footprints"),
            }
        }
    }

    #[test]
    fn single_cell_program_conflicts_everywhere() {
        // Every transaction touches cell 0, so every point is active.
        let p = transfer(1);
        assert_eq!(active_points(&p).len(), p.points());
    }

    #[test]
    fn many_cells_leave_some_points_independent() {
        // With far more cells than transactions, some footprints are
        // disjoint from every other-thread footprint and get pruned.
        let p = transfer(64);
        assert!(
            active_points(&p).len() < p.points(),
            "expected pruning opportunities with 64 cells"
        );
    }

    #[test]
    fn observer_and_allocswap_points_are_all_active() {
        for kind in [ProgramKind::TransferObserver, ProgramKind::AllocSwap] {
            let p = McProgram {
                base: TransferProgram::default(),
                kind,
            };
            assert_eq!(active_points(&p).len(), p.points(), "{kind:?}");
        }
    }

    #[test]
    fn active_points_sorted_by_descending_degree() {
        let p = transfer(3);
        let fps = footprints(&p);
        let txns = p.base.txns as usize;
        let deg = |i: usize| {
            fps.iter()
                .enumerate()
                .filter(|(j, fp)| j / txns != i / txns && fps[i].intersects(fp))
                .count()
        };
        let active = active_points(&p);
        for w in active.windows(2) {
            assert!(deg(w[0]) >= deg(w[1]));
        }
    }
}
