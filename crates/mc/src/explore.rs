//! Checkpoint/restore prefix-tree execution for the schedule explorer.
//!
//! The from-scratch enumerator ([`crate::enumerate()`]) rebuilds the
//! entire world — simulator, allocator, STM, seeded heap — for every
//! delay vector, then re-executes the identical construction-and-seeding
//! prefix before the schedules diverge. This module executes that shared
//! prefix exactly once per `(program, config)` cell: a [`Session`] builds
//! the stack, seeds the heap, and captures a *root checkpoint* (simulator
//! snapshot with copy-on-write page sharing, allocator heap metadata, STM
//! host counters) at post-seeding quiescence; each schedule then runs as
//! three restores plus a fuel re-arm instead of a rebuild. Checkpoints
//! are taken only at quiescence — between [`tm_sim::Sim::run`] calls —
//! so no live fiber or thread stack ever needs capturing, which is what
//! keeps snapshots exact under both executor backends.
//!
//! On top of the session, [`explore`] layers *state-fingerprint dedup*:
//! after each clean run it compares the simulator's 64-bit execution
//! fingerprint ([`tm_sim::Sim::trace_hash`]) against earlier schedules.
//! When schedule `w` ends in the same fingerprint as an earlier schedule
//! `v` whose support ends no later than `w`'s, every *extension* of `w`
//! (same delays plus extra delayed points strictly to the right) behaves
//! like the corresponding — already enumerated — extension of `v`, so
//! `w`'s extension subtree is skipped and accounted in
//! [`EnumStats::deduped`]. This is an explicit approximation in the SPIN
//! hash-compaction tradition: a 64-bit fingerprint can collide, and the
//! fingerprint deliberately omits the clock flush of a thread that
//! blocks immediately after a scheduling point (that omission is what
//! lets absorbed delays be *detected*). See DESIGN.md §14; the
//! from-scratch enumerator remains the oracle, and `tmstudy mc
//! --no-checkpoint` falls back to it wholesale.

use std::collections::{HashMap, HashSet};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::Instant;

use tm_alloc::{Allocator as _, HeapSnapshot};
use tm_sim::{MachineConfig, Sim, SimSnapshot};
use tm_stm::{Stm, StmHostSnapshot, StmStats};

use crate::conflict;
use crate::enumerate::{binomial, pruned_count, EnumConfig, EnumStats};
use crate::program::{
    build_stack, classify_panic, install_hook, main_phase, run_schedule, seed_heap, McProgram,
    QuietPanics, RunConfig,
};

/// A reusable execution cell for one `(program, config)` pair: the
/// simulator, allocator, and STM are built and seeded once, and a root
/// checkpoint is captured at post-seeding quiescence. Every [`Session::run`]
/// rewinds to the root instead of rebuilding the world, with the same
/// verdict contract as [`run_schedule`].
pub struct Session {
    program: McProgram,
    txns: usize,
    sim: Sim,
    alloc: Arc<dyn tm_alloc::Allocator>,
    stm: Arc<Stm>,
    root_sim: SimSnapshot,
    root_heap: HeapSnapshot,
    root_stm: StmHostSnapshot,
    /// Fuel each run starts with: the configured budget minus what the
    /// seed phase consumed, matching the from-scratch runner (which arms
    /// the full budget *before* seeding).
    run_fuel: u64,
    restores: u64,
}

impl Session {
    /// Build, seed, and checkpoint one cell. Returns `None` when the
    /// cell cannot be checkpointed — the allocator does not support heap
    /// snapshots, or the seed phase itself panicked (e.g. a tiny fuel
    /// budget with an allocating seed) — in which case callers fall back
    /// to the from-scratch [`run_schedule`].
    pub fn try_new(program: &McProgram, cfg: &RunConfig) -> Option<Session> {
        let _quiet = QuietPanics::enter();
        let sim = Sim::new(MachineConfig::xeon_e5405());
        sim.set_fuel(cfg.fuel);
        let (alloc, stm) = build_stack(&sim, cfg);
        let seeded = std::panic::catch_unwind(AssertUnwindSafe(|| {
            seed_heap(program, &sim, &alloc);
        }))
        .is_ok();
        if !seeded {
            return None;
        }
        let root_heap = alloc.snapshot()?;
        let root_sim = sim.snapshot(None);
        let root_stm = stm.snapshot_host();
        // A seed phase that survived left at least one event of budget
        // (exhausting it on the last event would have panicked).
        let run_fuel = cfg.fuel - root_sim.events();
        Some(Session {
            program: *program,
            txns: program.base.txns as usize,
            sim,
            alloc,
            stm,
            root_sim,
            root_heap,
            root_stm,
            run_fuel,
            restores: 0,
        })
    }

    /// Execute one delay vector from the root checkpoint. Restores the
    /// simulator, heap, and STM host state *first*, so a previous run
    /// that panicked (mutant exploration does, routinely) leaves no
    /// residue: the worker-panic protocol releases simulated locks and
    /// quiesces the run before propagating, and the restore rewinds
    /// whatever it touched.
    pub fn run(&mut self, delays: &[u64]) -> Result<(), String> {
        assert_eq!(delays.len(), self.program.points(), "schedule arity");
        let _quiet = QuietPanics::enter();
        self.restores += 1;
        self.sim.restore(&self.root_sim);
        self.alloc.restore(&self.root_heap);
        self.stm.restore_host(&self.root_stm);
        self.sim.set_fuel(self.run_fuel);
        install_hook(&self.sim, self.txns, delays);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            main_phase(&self.program, &self.sim, &self.stm)
        }));
        match r {
            Ok(r) => r,
            Err(payload) => Err(classify_panic(payload.as_ref())),
        }
    }

    /// Scheduler events the root checkpoint encapsulates — the replay
    /// work every restore avoids re-executing.
    pub fn root_events(&self) -> u64 {
        self.root_sim.events()
    }

    /// Restores performed so far (one per [`Session::run`]).
    pub fn restores(&self) -> u64 {
        self.restores
    }

    /// The execution fingerprint after the last run, relative to the
    /// root checkpoint — identical to what the from-scratch runner's
    /// simulator would report after the same schedule.
    pub fn trace_hash(&self) -> u64 {
        self.sim.trace_hash()
    }

    /// Merged STM statistics after the last run (host counters are
    /// rewound on every restore, so these are per-run, not cumulative).
    pub fn stats(&self) -> StmStats {
        self.stm.stats()
    }
}

/// Throughput accounting for one sweep, for the `tm-mc-report/v1.1`
/// throughput block and the `--mc` benchmark.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Throughput {
    /// Schedules executed per wall-clock second.
    pub schedules_per_sec: f64,
    /// Scheduler events restores avoided re-executing: the root
    /// checkpoint's event count times the number of restores.
    pub replay_steps_saved: u64,
    /// Checkpoints captured (one root per session; 0 when the sweep fell
    /// back to from-scratch execution).
    pub checkpoints_taken: u64,
}

/// Schedules in the extension subtree of a support ending at pool
/// position `last` with support size `k`: choose 1..=depth-k extra
/// positions strictly to the right, each with any of `m` magnitudes.
fn extension_count(pool: usize, last: usize, k: usize, depth: usize, m: usize) -> u64 {
    let avail = (pool - 1 - last) as u64;
    let mut total: u128 = 0;
    let mut mj: u128 = 1;
    for j in 1..=(depth - k) as u64 {
        mj = mj.saturating_mul(m as u128);
        total = total.saturating_add((binomial(avail, j) as u128).saturating_mul(mj));
    }
    total.min(u64::MAX as u128) as u64
}

/// Checkpointed counterpart of [`crate::enumerate()`]: same bounded
/// schedule space, same visit order, same verdicts — executed via a
/// [`Session`] restore per schedule instead of a rebuild, with
/// state-fingerprint dedup of extension subtrees. Falls back to the
/// from-scratch runner (and disables dedup) when the cell cannot be
/// checkpointed. `stats.explored` at a violation is still the 1-based
/// witness index among *executed* schedules.
pub fn explore(
    program: &McProgram,
    cfg: &RunConfig,
    ecfg: &EnumConfig,
) -> (EnumStats, Option<(Vec<u64>, String)>, Throughput) {
    let start = Instant::now();
    let mut session = Session::try_new(program, cfg);
    let points = program.points();
    let support_pool: Vec<usize> = if ecfg.prune {
        conflict::active_points(program)
    } else {
        (0..points).collect()
    };
    let pool = support_pool.len();
    let m = ecfg.magnitudes.len();
    let mut stats = EnumStats {
        pruned: pruned_count(points as u64, pool as u64, ecfg.depth, m as u64),
        ..EnumStats::default()
    };

    // Fingerprint of each executed schedule → the smallest last-support
    // pool position seen with that fingerprint, and the (combo, assign)
    // prefixes whose extension subtrees are skipped. The zero schedule's
    // conceptual last position is -1: it precedes every support.
    let mut seen: HashMap<u64, i64> = HashMap::new();
    let mut skips: HashSet<Vec<(u32, u32)>> = HashSet::new();

    let run = |sess: &mut Option<Session>, delays: &[u64]| match sess {
        Some(s) => s.run(delays),
        None => run_schedule(program, cfg, delays),
    };
    let throughput = |sess: &Option<Session>, explored: u64, start: Instant| {
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        Throughput {
            schedules_per_sec: explored as f64 / secs,
            replay_steps_saved: sess
                .as_ref()
                .map(|s| s.root_events() * s.restores())
                .unwrap_or(0),
            checkpoints_taken: sess.is_some() as u64,
        }
    };

    let mut delays = vec![0u64; points];
    // Support size 0: the undisturbed schedule.
    stats.explored += 1;
    if let Err(detail) = run(&mut session, &delays) {
        let t = throughput(&session, stats.explored, start);
        return (stats, Some((delays, detail)), t);
    }
    if let Some(s) = &session {
        seen.insert(s.trace_hash(), -1);
    }

    for k in 1..=ecfg.depth.min(pool) {
        let mut combo: Vec<usize> = (0..k).collect();
        loop {
            let mut assign = vec![0usize; k];
            loop {
                // A schedule whose (combo, assign) proper prefix was
                // deduped is an already-accounted extension: skip it
                // without running or recounting it.
                let skipped = (1..k).any(|j| {
                    let key: Vec<(u32, u32)> = combo[..j]
                        .iter()
                        .zip(assign[..j].iter())
                        .map(|(&c, &a)| (c as u32, a as u32))
                        .collect();
                    skips.contains(&key)
                });
                if !skipped {
                    if stats.explored >= ecfg.max_schedules {
                        stats.capped = true;
                        let t = throughput(&session, stats.explored, start);
                        return (stats, None, t);
                    }
                    for (slot, &mag_idx) in combo.iter().zip(assign.iter()) {
                        delays[support_pool[*slot]] = ecfg.magnitudes[mag_idx];
                    }
                    stats.explored += 1;
                    let r = run(&mut session, &delays);
                    for slot in &combo {
                        delays[support_pool[*slot]] = 0;
                    }
                    if let Err(detail) = r {
                        let mut witness = vec![0u64; points];
                        for (slot, &mag_idx) in combo.iter().zip(assign.iter()) {
                            witness[support_pool[*slot]] = ecfg.magnitudes[mag_idx];
                        }
                        let t = throughput(&session, stats.explored, start);
                        return (stats, Some((witness, detail)), t);
                    }
                    if let Some(s) = &session {
                        let hash = s.trace_hash();
                        let last = combo[k - 1] as i64;
                        match seen.get(&hash).copied() {
                            // An earlier schedule with the same end state
                            // and a support ending no later: this
                            // schedule's extensions mirror that one's.
                            Some(prev) if prev <= last => {
                                let key: Vec<(u32, u32)> = combo
                                    .iter()
                                    .zip(assign.iter())
                                    .map(|(&c, &a)| (c as u32, a as u32))
                                    .collect();
                                skips.insert(key);
                                stats.deduped +=
                                    extension_count(pool, combo[k - 1], k, ecfg.depth, m);
                            }
                            Some(prev) => {
                                seen.insert(hash, prev.min(last));
                            }
                            None => {
                                seen.insert(hash, last);
                            }
                        }
                    }
                }
                // Advance the magnitude counter.
                let mut i = 0;
                loop {
                    if i == k {
                        break;
                    }
                    assign[i] += 1;
                    if assign[i] < m {
                        break;
                    }
                    assign[i] = 0;
                    i += 1;
                }
                if i == k {
                    break;
                }
            }
            // Advance the combination; fall through to the next support
            // size when this one is exhausted.
            let mut advanced = false;
            let mut i = k;
            while i > 0 {
                i -= 1;
                if combo[i] < pool - (k - i) {
                    combo[i] += 1;
                    for j in i + 1..k {
                        combo[j] = combo[j - 1] + 1;
                    }
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }
    }
    let t = throughput(&session, stats.explored, start);
    (stats, None, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate, space_size};
    use crate::program::ProgramKind;
    use tm_check::TransferProgram;

    fn small() -> McProgram {
        McProgram {
            base: TransferProgram {
                threads: 3,
                cells: 2,
                txns: 2,
                ..TransferProgram::default()
            },
            kind: ProgramKind::Transfer,
        }
    }

    #[test]
    fn session_matches_oracle_per_schedule_and_is_stable() {
        let p = small();
        let cfg = RunConfig::clean();
        let mut s = Session::try_new(&p, &cfg).expect("tbb supports heap snapshots");
        let schedules: Vec<Vec<u64>> = vec![
            vec![0; p.points()],
            (0..p.points() as u64).map(|i| (i * 37) % 400).collect(),
            (0..p.points() as u64).map(|i| (i % 3) * 800).collect(),
        ];
        let mut hashes = Vec::new();
        for d in &schedules {
            assert_eq!(s.run(d), run_schedule(&p, &cfg, d), "{d:?}");
            hashes.push(s.trace_hash());
        }
        // Restores actually rewind: re-running each schedule reproduces
        // its fingerprint exactly.
        for (d, h) in schedules.iter().zip(&hashes) {
            assert_eq!(s.run(d), Ok(()));
            assert_eq!(s.trace_hash(), *h, "fingerprint drifted for {d:?}");
        }
        assert_eq!(s.restores(), 2 * schedules.len() as u64);
    }

    #[test]
    fn session_survives_a_failing_run() {
        // TxAllocEarlyFree corrupts the STM object cache's free list on
        // every schedule. In debug builds the corruption trips an arithmetic
        // check inside the allocator (an unwind through the whole stack); in
        // release it surfaces as a conservation violation. Either way the
        // run errs exactly like the oracle, and the session must come back
        // byte-identical: the next run matches both a fresh session and the
        // from-scratch oracle.
        let p = McProgram {
            base: TransferProgram::default(),
            kind: ProgramKind::AllocSwap,
        };
        let cfg = RunConfig {
            bug: tm_stm::InjectedBug::TxAllocEarlyFree,
            ..RunConfig::clean()
        };
        let zero = vec![0u64; p.points()];
        let next: Vec<u64> = (0..p.points() as u64).map(|i| (i % 2) * 400).collect();

        let mut survivor = Session::try_new(&p, &cfg).unwrap();
        let r0 = survivor.run(&zero);
        assert!(r0.is_err(), "mutant must be caught, got {r0:?}");
        #[cfg(debug_assertions)]
        assert!(
            r0.as_ref().is_err_and(|e| e.starts_with("panic:")),
            "expected an allocator panic, got {r0:?}"
        );
        assert_eq!(run_schedule(&p, &cfg, &zero), r0, "oracle disagrees");
        let r1 = survivor.run(&next);
        let h1 = survivor.trace_hash();

        let mut fresh = Session::try_new(&p, &cfg).unwrap();
        assert_eq!(fresh.run(&next), r1, "post-failure verdict drifted");
        assert_eq!(fresh.trace_hash(), h1, "post-failure fingerprint drifted");
        assert_eq!(run_schedule(&p, &cfg, &next), r1, "oracle disagrees");
    }

    #[test]
    fn session_classifies_livelock_like_the_oracle() {
        let p = small();
        let cfg = RunConfig {
            fuel: 50,
            ..RunConfig::clean()
        };
        let zero = vec![0u64; p.points()];
        let mut s = Session::try_new(&p, &cfg).unwrap();
        let r = s.run(&zero);
        assert!(
            r.as_ref().is_err_and(|e| e.starts_with("livelock:")),
            "{r:?}"
        );
        assert_eq!(r, run_schedule(&p, &cfg, &zero));
        // Fuel exhaustion unwinds through the workers in every build
        // profile, so this doubles as the panic-recovery test: the session
        // must restore cleanly and reproduce the same livelock again.
        let h = s.trace_hash();
        assert_eq!(s.run(&zero), r, "post-panic verdict drifted");
        assert_eq!(s.trace_hash(), h, "post-panic fingerprint drifted");
    }

    #[test]
    fn explore_matches_enumerate_and_accounts_the_space() {
        let p = small();
        let ecfg = EnumConfig {
            depth: 2,
            magnitudes: vec![200, 400],
            ..EnumConfig::default()
        };
        let cfg = RunConfig::clean();
        let (estats, efound) = enumerate(&p, &cfg, &ecfg);
        let (xstats, xfound, t) = explore(&p, &cfg, &ecfg);
        assert!(efound.is_none() && xfound.is_none());
        assert_eq!(xstats.pruned, estats.pruned);
        assert!(!xstats.capped);
        assert_eq!(
            xstats.explored + xstats.pruned + xstats.deduped,
            space_size(p.points() as u64, ecfg.depth, ecfg.magnitudes.len())
        );
        // Whatever dedup skipped, the executed set plus the skipped set
        // covers exactly what the oracle executed.
        assert_eq!(xstats.explored + xstats.deduped, estats.explored);
        assert_eq!(t.checkpoints_taken, 1);
        // Transfer programs seed via direct state writes (no scheduler
        // events), so the root checkpoint saves no replay steps.
        assert_eq!(t.replay_steps_saved, 0);
        assert!(t.schedules_per_sec > 0.0);
    }

    #[test]
    fn extension_counts() {
        // pool=4, last position 1, k=1, depth=3, m=2:
        // j=1 → C(2,1)·2 = 4; j=2 → C(2,2)·4 = 4.
        assert_eq!(extension_count(4, 1, 1, 3, 2), 8);
        // Nothing to the right → no extensions.
        assert_eq!(extension_count(4, 3, 1, 3, 2), 0);
        // depth == k → no room for extensions.
        assert_eq!(extension_count(4, 0, 2, 2, 2), 0);
    }
}
