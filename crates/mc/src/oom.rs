//! The systematic every-site OOM sweep.
//!
//! Where [`mod@crate::explore`] sweeps the *schedule* space of a program,
//! this module sweeps its *allocation-failure* space: a counting dry run
//! under [`AllocFaultPlan::None`] enumerates every allocation site the
//! main phase executes (the injector's site counter advances even when
//! the plan is inert), then the cell is re-executed once per site with
//! exactly that attempt forced to fail ([`AllocFaultPlan::NthSite`]).
//! Every injected failure must end in either a committed retry or a
//! clean propagated `AllocFailed` abort, with token conservation intact
//! and — after a forced [`tm_stm::Stm::quiesce`] — not one block more
//! live than the dry run left. A final *pressure* run under a byte
//! budget sized to admit at most one extra node drives the
//! propagation path itself: transfers that cannot allocate must give up
//! cleanly, and the heap must still balance.
//!
//! The stack is `Stm → HeapAuditor(FaultInjector(allocator))`: the
//! auditor sits directly above the injector so both observe the same
//! malloc-attempt stream and agree on site numbering — a leaked block's
//! [`tm_alloc::LiveBlock::site`] names the allocation site that produced
//! it. Sites are swept from one root checkpoint (simulator + heap + STM
//! host state) captured at post-seed quiescence; the fault plan is
//! deliberately not part of the heap snapshot, so `set_plan` between
//! restores re-targets the next run without rebuilding the world.
//!
//! Because the sweep visits sites in ascending order and stops at the
//! first failure, a caught mutant (the catalog's `leak-on-alloc-fail`
//! seed, which this sweep — not the schedule catalog — must catch) is
//! automatically *shrunk* to the minimal failing site index.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use tm_alloc::{
    AllocFaultPlan, Allocator, AllocatorKind, FaultInjector, HeapAuditor, HeapSnapshot,
};
use tm_check::TransferProgram;
use tm_obs::{McVerdict, OomCell, OomReport};
use tm_sim::{MachineConfig, Sim, SimSnapshot};
use tm_stm::{AbortCause, BackendKind, CmKind, InjectedBug, Stm, StmConfig, StmHostSnapshot};

use crate::program::{
    classify_panic, main_phase, seed_heap, McProgram, ProgramKind, QuietPanics, RunConfig,
    NODE_SIZE,
};

/// A reusable OOM-sweep execution cell: one `(program, config)` pair
/// built over the audited fault-injecting stack, seeded once, with a
/// root checkpoint at post-seed quiescence. Each [`OomSession::run`]
/// restores the root, arms a fault plan, executes the main phase plus a
/// forced quiescence drain, and leaves the auditor/injector counters
/// describing exactly that run.
pub struct OomSession {
    program: McProgram,
    sim: Sim,
    injector: Arc<FaultInjector>,
    auditor: Arc<HeapAuditor>,
    stm: Arc<Stm>,
    root_sim: SimSnapshot,
    root_heap: HeapSnapshot,
    root_stm: StmHostSnapshot,
    run_fuel: u64,
    /// Sites the seed phase consumed: the first main-phase site index.
    seed_sites: u64,
}

impl OomSession {
    /// Build, seed, and checkpoint one cell. `None` when the allocator
    /// does not support heap snapshots or the seed phase panicked —
    /// callers degrade the cell rather than guessing.
    /// [`RunConfig::alloc_fault`] is ignored here: the session owns its
    /// injector (plans are swept per run via [`OomSession::run`]).
    pub fn try_new(program: &McProgram, cfg: &RunConfig) -> Option<OomSession> {
        let _quiet = QuietPanics::enter();
        let sim = Sim::new(MachineConfig::xeon_e5405());
        sim.set_fuel(cfg.fuel);
        let injector = FaultInjector::new(cfg.alloc.build(&sim), AllocFaultPlan::None);
        let auditor = HeapAuditor::new(Arc::clone(&injector) as Arc<dyn Allocator>);
        let alloc = Arc::clone(&auditor) as Arc<dyn Allocator>;
        let stm = Arc::new(Stm::new(
            &sim,
            Arc::clone(&alloc),
            StmConfig {
                backend: cfg.backend,
                cm: cfg.cm,
                bug: cfg.bug,
                ..StmConfig::default()
            },
        ));
        let seeded = std::panic::catch_unwind(AssertUnwindSafe(|| {
            seed_heap(program, &sim, &alloc);
        }))
        .is_ok();
        if !seeded {
            return None;
        }
        let root_heap = auditor.snapshot()?;
        let root_sim = sim.snapshot(None);
        let root_stm = stm.snapshot_host();
        let run_fuel = cfg.fuel - root_sim.events();
        let seed_sites = injector.sites();
        Some(OomSession {
            program: *program,
            sim,
            injector,
            auditor,
            stm,
            root_sim,
            root_heap,
            root_stm,
            run_fuel,
            seed_sites,
        })
    }

    /// The first main-phase allocation-site index (seed allocations own
    /// the indices below it and are never swept).
    pub fn seed_sites(&self) -> u64 {
        self.seed_sites
    }

    /// Allocation attempts the last run's main phase reached, as an
    /// absolute site index (the sweep's exclusive upper bound after the
    /// dry run).
    pub fn sites(&self) -> u64 {
        self.injector.sites()
    }

    /// Failures the injector fired during the last run.
    pub fn injected(&self) -> u64 {
        self.injector.injected()
    }

    /// The auditor's view of the last run (violations, live blocks with
    /// their allocation sites).
    pub fn audit(&self) -> tm_alloc::AuditReport {
        self.auditor.report()
    }

    /// Merged per-run STM statistics (host counters rewind on restore).
    pub fn stats(&self) -> tm_stm::StmStats {
        self.stm.stats()
    }

    /// Restore the root checkpoint, arm `plan`, and execute the main
    /// phase plus a forced quiescence drain (so deferred frees reach the
    /// auditor and the leak check sees the truly-live heap). Same verdict
    /// contract as [`crate::run_schedule`], under the zero schedule.
    pub fn run(&mut self, plan: AllocFaultPlan) -> Result<(), String> {
        let _quiet = QuietPanics::enter();
        self.sim.restore(&self.root_sim);
        self.auditor.restore(&self.root_heap);
        self.stm.restore_host(&self.root_stm);
        self.sim.set_fuel(self.run_fuel);
        self.injector.set_plan(plan);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            main_phase(&self.program, &self.sim, &self.stm)?;
            self.sim.run(1, |ctx| self.stm.quiesce(ctx));
            Ok(())
        }));
        self.injector.set_plan(AllocFaultPlan::None);
        match r {
            Ok(r) => r,
            Err(payload) => Err(classify_panic(payload.as_ref())),
        }
    }
}

/// The outcome of one swept cell, before conversion to the
/// `tm-oom-report/v1` cell shape.
#[derive(Clone, Debug)]
pub struct OomOutcome {
    /// Sweep verdict: `clean`/`caught` are the expected outcomes.
    pub verdict: McVerdict,
    /// Main-phase allocation sites the dry run enumerated.
    pub sites: u64,
    /// Injected failures executed across every run of the cell (one per
    /// swept site, plus the pressure run's refusals).
    pub injected: u64,
    /// Swept sites whose failing transaction retried and committed.
    pub committed_retries: u64,
    /// Clean `AllocFailed` propagations observed (pressure run included).
    pub alloc_aborts: u64,
    /// The smallest failing site index, for `caught`/`violation` cells.
    pub failing_site: Option<u64>,
    /// What broke at that site (or in the dry/pressure run).
    pub detail: Option<String>,
}

/// The oracle program of the sweep: the fallible-plane transfers of
/// [`ProgramKind::Oom`] at the quick-matrix shape (3 threads × 2
/// transactions over 2 cells).
pub fn oom_program() -> McProgram {
    McProgram {
        base: TransferProgram {
            threads: 3,
            cells: 2,
            txns: 2,
            ..TransferProgram::default()
        },
        kind: ProgramKind::Oom,
    }
}

/// Execute the every-site sweep for one cell: counting dry run, one
/// `NthSite` re-run per enumerated main-phase site (ascending, stopping
/// at the first failure — which is therefore minimal), and a byte-budget
/// pressure run that forces the propagation path. See the module docs
/// for the invariants each run must satisfy.
pub fn sweep_cell(program: &McProgram, cfg: &RunConfig) -> OomOutcome {
    let fail = |detail: String, site: Option<u64>| OomOutcome {
        verdict: if cfg.bug == InjectedBug::None {
            McVerdict::Violation
        } else {
            McVerdict::Caught
        },
        sites: 0,
        injected: 0,
        committed_retries: 0,
        alloc_aborts: 0,
        failing_site: site,
        detail: Some(detail),
    };

    let Some(mut session) = OomSession::try_new(program, cfg) else {
        return OomOutcome {
            verdict: McVerdict::Violation,
            sites: 0,
            injected: 0,
            committed_retries: 0,
            alloc_aborts: 0,
            failing_site: None,
            detail: Some("cell cannot be checkpointed (no heap snapshot support)".into()),
        };
    };

    // Counting dry run: enumerate the main-phase sites and freeze the
    // baselines every injected run is judged against.
    if let Err(e) = session.run(AllocFaultPlan::None) {
        let mut out = fail(format!("dry run failed: {e}"), None);
        // A dry-run failure on a mutant cell is not a catch — the bug
        // must be exposed *by an injected failure*, not by the clean run.
        if cfg.bug != InjectedBug::None {
            out.verdict = McVerdict::Violation;
        }
        return out;
    }
    let first = session.seed_sites();
    let last = session.sites();
    let expected_live = session.audit().live;
    let dry_commits = session.stats().commits;

    let mut outcome = OomOutcome {
        verdict: McVerdict::Clean,
        sites: last - first,
        injected: 0,
        committed_retries: 0,
        alloc_aborts: 0,
        failing_site: None,
        detail: None,
    };

    for site in first..last {
        let r = session.run(AllocFaultPlan::NthSite(site));
        outcome.injected += session.injected();
        let failure = check_site_run(&session, site, r, expected_live, dry_commits);
        match failure {
            Some(detail) => {
                outcome.failing_site = Some(site);
                outcome.detail = Some(detail);
                outcome.verdict = if cfg.bug == InjectedBug::None {
                    McVerdict::Violation
                } else {
                    McVerdict::Caught
                };
                return outcome;
            }
            None => {
                if session.stats().commits == dry_commits {
                    outcome.committed_retries += 1;
                } else {
                    outcome.alloc_aborts += dry_commits - session.stats().commits;
                }
            }
        }
    }

    // Pressure run: a byte budget with room for one node beyond the
    // seeded heap. Every two-node transfer exhausts the contention
    // manager's retry budget and must propagate cleanly — exercising the
    // give-up path the single-shot NthSite plan cannot reach.
    let budget = expected_live as u64 * NODE_SIZE + NODE_SIZE;
    let r = session.run(AllocFaultPlan::ByteBudget(budget));
    outcome.injected += session.injected();
    if let Some(detail) = check_pressure_run(&session, r, expected_live) {
        outcome.detail = Some(format!("pressure run (budget {budget}): {detail}"));
        outcome.verdict = if cfg.bug == InjectedBug::None {
            McVerdict::Violation
        } else {
            McVerdict::Caught
        };
        return outcome;
    }
    outcome.alloc_aborts += dry_commits - session.stats().commits;

    if cfg.bug != InjectedBug::None {
        // A seeded mutant that survived every injected site escaped.
        outcome.verdict = McVerdict::Escaped;
    }
    outcome
}

/// The per-site invariants: the run ends clean, the injection actually
/// fired and surfaced as an `AllocFailed` abort, the auditor saw no
/// violation, and quiescence leaves exactly the dry run's live set.
fn check_site_run(
    session: &OomSession,
    site: u64,
    r: Result<(), String>,
    expected_live: usize,
    dry_commits: u64,
) -> Option<String> {
    if let Err(e) = r {
        return Some(e);
    }
    if session.injected() == 0 {
        return Some(format!("site {site} was never reached"));
    }
    let stats = session.stats();
    if stats.by_cause[AbortCause::AllocFailed as usize] == 0 {
        return Some("injected failure never surfaced as an alloc-failed abort".into());
    }
    if stats.commits > dry_commits {
        return Some(format!(
            "commit count grew under injection: {} > {dry_commits}",
            stats.commits
        ));
    }
    audit_failure(session, expected_live)
}

/// The pressure-run invariants: clean end state, no leak — commit-count
/// loss is *expected* here (that is the propagation path under test).
fn check_pressure_run(
    session: &OomSession,
    r: Result<(), String>,
    expected_live: usize,
) -> Option<String> {
    if let Err(e) = r {
        return Some(e);
    }
    audit_failure(session, expected_live)
}

/// Auditor-side checks shared by every injected run: recorded heap
/// violations, then the leak comparison against the dry run's live set,
/// naming the leaked blocks' allocation sites.
fn audit_failure(session: &OomSession, expected_live: usize) -> Option<String> {
    let report = session.audit();
    if !report.is_clean() {
        return Some(format!(
            "heap audit: {} violation(s): {}",
            report.violation_count,
            report.violations.join("; ")
        ));
    }
    if report.live != expected_live {
        if report.live > expected_live {
            let leaked = report.live - expected_live;
            let sites: Vec<String> = report
                .live_blocks
                .iter()
                .map(|(_, b)| b.site.to_string())
                .collect();
            return Some(format!(
                "leaked {leaked} block(s) ({} bytes) after injected failure \
                 (live sites: {})",
                leaked as u64 * NODE_SIZE,
                sites.join(",")
            ));
        }
        return Some(format!(
            "live blocks lost: {} < {expected_live}",
            report.live
        ));
    }
    None
}

/// Convert one swept cell to the `tm-oom-report/v1` cell shape.
pub fn oom_cell(program: &McProgram, cfg: &RunConfig) -> OomCell {
    let outcome = sweep_cell(program, cfg);
    OomCell {
        config: vec![
            ("program".into(), program.kind.name().into()),
            ("alloc".into(), cfg.alloc.name().into()),
            ("backend".into(), cfg.backend.name().into()),
            ("cm".into(), cfg.cm.name().into()),
            ("bug".into(), cfg.bug.name().into()),
        ],
        verdict: outcome.verdict,
        sites: outcome.sites,
        injected: outcome.injected,
        committed_retries: outcome.committed_retries,
        alloc_aborts: outcome.alloc_aborts,
        failing_site: outcome.failing_site,
        detail: outcome.detail,
    }
}

/// The backend × contention-manager face of the quick matrix: the two
/// backends crossed with the patient and the adaptive policies.
const QUICK_BACKENDS: [BackendKind; 2] = [BackendKind::Etl, BackendKind::Norec];
const QUICK_CMS: [CmKind; 2] = [CmKind::Suicide, CmKind::Adaptive];

/// The `tmstudy mc --oom` quick suite: the every-site sweep over all
/// four allocators × `QUICK_BACKENDS` × `QUICK_CMS` on the clean STM,
/// plus one `leak-on-alloc-fail` mutant cell the sweep must catch (and
/// shrink to its minimal failing site).
pub fn oom_quick_report(name: &str) -> OomReport {
    let program = oom_program();
    let mut report = OomReport::new(name)
        .meta("mode", "quick")
        .meta("program", program.kind.name());
    for alloc in AllocatorKind::ALL {
        for backend in QUICK_BACKENDS {
            for cm in QUICK_CMS {
                let cfg = RunConfig {
                    alloc,
                    backend,
                    cm,
                    ..RunConfig::clean()
                };
                report.cells.push(oom_cell(&program, &cfg));
            }
        }
    }
    let mutant = RunConfig {
        bug: InjectedBug::LeakOnAllocFail,
        ..RunConfig::clean()
    };
    report.cells.push(oom_cell(&program, &mutant));
    report
}

/// The oom rows of the `tmstudy check` matrix: one clean every-site
/// sweep per allocator (default backend/CM) plus the
/// `leak-on-alloc-fail` mutant cell, converted to the check-report cell
/// shape.
pub fn oom_check_cells() -> Vec<tm_obs::CheckCell> {
    let program = oom_program();
    let mut out = Vec::new();
    for alloc in AllocatorKind::ALL {
        let cfg = RunConfig {
            alloc,
            ..RunConfig::clean()
        };
        out.push(oom_cell_to_check(oom_cell(&program, &cfg)));
    }
    let mutant = RunConfig {
        bug: InjectedBug::LeakOnAllocFail,
        ..RunConfig::clean()
    };
    out.push(oom_cell_to_check(oom_cell(&program, &mutant)));
    out
}

fn oom_cell_to_check(cell: OomCell) -> tm_obs::CheckCell {
    let mut config = vec![("kind".to_string(), "oom".to_string())];
    config.extend(cell.config.iter().cloned());
    let mut checks = vec![
        ("sites".to_string(), cell.sites),
        ("injected".to_string(), cell.injected),
        ("committed_retries".to_string(), cell.committed_retries),
        ("alloc_aborts".to_string(), cell.alloc_aborts),
    ];
    if let Some(site) = cell.failing_site {
        checks.push(("failing_site".to_string(), site));
    }
    let mut failures = Vec::new();
    if !cell.verdict.is_expected() {
        let evidence = cell
            .detail
            .as_deref()
            .map(|d| format!(": {d}"))
            .unwrap_or_default();
        failures.push(format!("oom verdict {}{evidence}", cell.verdict.name()));
    }
    let mut out = tm_check::cell_from(config, checks, failures);
    if out.status == tm_obs::CheckStatus::Pass {
        out.detail = Some(format!("verdict {}", cell.verdict.name()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_sweep_is_clean_and_covers_every_site() {
        let program = oom_program();
        let cfg = RunConfig::clean();
        let out = sweep_cell(&program, &cfg);
        assert_eq!(out.verdict, McVerdict::Clean, "{:?}", out.detail);
        assert!(out.sites > 0, "the oom program must allocate");
        // One NthSite injection per swept site, plus the pressure run's.
        assert!(out.injected >= out.sites, "{out:?}");
        // Single-shot injections always recover; the pressure run always
        // forces at least one transfer to give up.
        assert_eq!(out.committed_retries, out.sites, "{out:?}");
        assert!(out.alloc_aborts > 0, "{out:?}");
        assert!(out.failing_site.is_none(), "{out:?}");
    }

    #[test]
    fn leak_mutant_is_caught_at_the_minimal_site() {
        let program = oom_program();
        let cfg = RunConfig {
            bug: InjectedBug::LeakOnAllocFail,
            ..RunConfig::clean()
        };
        let out = sweep_cell(&program, &cfg);
        assert_eq!(out.verdict, McVerdict::Caught, "{out:?}");
        let site = out.failing_site.expect("a caught cell names its site");
        let detail = out.detail.as_deref().unwrap();
        assert!(detail.contains("leaked"), "{detail}");
        // Ascending order makes the reported site minimal: every earlier
        // site must have survived injection even under the mutant (the
        // journal is empty when a transfer's *first* allocation fails).
        let mut session = OomSession::try_new(&program, &cfg).unwrap();
        session.run(AllocFaultPlan::None).unwrap();
        let expected_live = session.audit().live;
        let dry_commits = session.stats().commits;
        for earlier in session.seed_sites()..site {
            let r = session.run(AllocFaultPlan::NthSite(earlier));
            assert_eq!(
                check_site_run(&session, earlier, r, expected_live, dry_commits),
                None,
                "site {earlier} fails too — {site} is not minimal"
            );
        }
    }

    #[test]
    fn session_restores_are_deterministic() {
        let program = oom_program();
        let cfg = RunConfig::clean();
        let mut s = OomSession::try_new(&program, &cfg).unwrap();
        s.run(AllocFaultPlan::None).unwrap();
        let sites = s.sites();
        let live = s.audit().live;
        let commits = s.stats().commits;
        let first = s.seed_sites();
        // Re-running the same plan reproduces every observable exactly.
        s.run(AllocFaultPlan::NthSite(first)).unwrap();
        assert_eq!(s.injected(), 1);
        s.run(AllocFaultPlan::None).unwrap();
        assert_eq!(s.sites(), sites);
        assert_eq!(s.audit().live, live);
        assert_eq!(s.stats().commits, commits);
        assert_eq!(s.injected(), 0, "the None plan injects nothing");
    }

    #[test]
    fn quick_report_shape_and_verdicts() {
        let report = oom_quick_report("oom_quick_test");
        // 4 allocators × 2 backends × 2 CMs + the mutant cell.
        assert_eq!(report.cells.len(), 17);
        assert_eq!(report.degraded(), 0, "{}", report.render());
        let mutant = report.cells.last().unwrap();
        assert_eq!(mutant.verdict, McVerdict::Caught);
        assert!(mutant.failing_site.is_some());
        // The artifact round-trips through the v1 schema.
        let parsed = OomReport::parse(&report.to_json_string()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn check_cells_pass_and_carry_site_counters() {
        let cells = oom_check_cells();
        assert_eq!(cells.len(), AllocatorKind::ALL.len() + 1);
        for cell in &cells {
            assert_eq!(
                cell.status,
                tm_obs::CheckStatus::Pass,
                "{:?}: {:?}",
                cell.config,
                cell.detail
            );
            assert!(cell.checks.iter().any(|(k, _)| k == "sites"));
        }
        let mutant = cells.last().unwrap();
        assert!(mutant.checks.iter().any(|(k, _)| k == "failing_site"));
        assert_eq!(mutant.detail.as_deref(), Some("verdict caught"));
    }
}
