//! The mutation catalog and the cell builders behind `tmstudy mc`.
//!
//! Each [`MutantRecipe`] pairs one [`InjectedBug`] with the program,
//! configuration, and exploration strategy empirically tuned to expose
//! it; [`run_mutant_cell`] proves the explorer still catches it (verdict
//! `caught`, with the violation shrunk to a minimal replayable delay
//! vector) and [`run_clean_cell`] proves the clean STM survives the same
//! machinery (verdict `clean`). The quick suite bundles the full catalog
//! with a bounded-exhaustive clean sweep across every backend ×
//! contention-manager combination.

use proptest::shrink_failure;
use proptest::test_runner::TestCaseError;
use tm_alloc::AllocatorKind;
use tm_check::strategies::delays;
use tm_check::TransferProgram;
use tm_obs::{McCell, McCounterexample, McReport, McVerdict};
use tm_stm::{BackendKind, CmKind, InjectedBug};

use crate::enumerate::{enumerate, EnumConfig, EnumStats};
use crate::explore::{explore, Throughput};
use crate::pct::{pct_explore, PctConfig};
use crate::program::{run_schedule, McProgram, ProgramKind, RunConfig};

/// How a cell sweeps the schedule space.
#[derive(Clone, Debug)]
pub enum Strategy {
    /// Bounded-depth exhaustive enumeration ([`crate::enumerate()`]).
    Exhaustive(EnumConfig),
    /// Randomized priority trials ([`crate::pct`]).
    Pct(PctConfig),
}

impl Strategy {
    fn name(&self) -> &'static str {
        match self {
            Strategy::Exhaustive(_) => "exhaustive",
            Strategy::Pct(_) => "pct",
        }
    }
}

/// Schedule-count accounting accumulated across the cells of one sweep.
/// The caller supplies the wall-clock measurement; together they feed
/// the `tm-mc-report/v1.1` throughput block and `bench.sh --mc`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepWork {
    /// Schedules executed across all cells (exhaustive runs plus pct
    /// trials).
    pub schedules: u64,
    /// Scheduler events checkpoint restores avoided re-executing.
    pub replay_steps_saved: u64,
    /// Root checkpoints captured (at most one per checkpointable cell).
    pub checkpoints_taken: u64,
    /// Schedules skipped by state-fingerprint dedup.
    pub deduped: u64,
}

impl SweepWork {
    fn absorb(&mut self, explored: u64, deduped: u64, t: Option<&Throughput>) {
        self.schedules += explored;
        self.deduped += deduped;
        if let Some(t) = t {
            self.replay_steps_saved += t.replay_steps_saved;
            self.checkpoints_taken += t.checkpoints_taken;
        }
    }
}

/// Execute one bounded-exhaustive sweep — checkpointed ([`explore`]) by
/// default, from scratch ([`enumerate`]) under `--no-checkpoint` — and
/// fold its schedule counts into `work`.
fn sweep_exhaustive(
    program: &McProgram,
    run: &RunConfig,
    ecfg: &EnumConfig,
    checkpoint: bool,
    work: &mut SweepWork,
) -> (EnumStats, Option<(Vec<u64>, String)>) {
    if checkpoint {
        let (stats, found, t) = explore(program, run, ecfg);
        work.absorb(stats.explored, stats.deduped, Some(&t));
        (stats, found)
    } else {
        let (stats, found) = enumerate(program, run, ecfg);
        work.absorb(stats.explored, 0, None);
        (stats, found)
    }
}

/// One entry of the mutation catalog: a seeded defect plus the recipe
/// that exposes it.
#[derive(Clone, Debug)]
pub struct MutantRecipe {
    /// The seeded defect.
    pub bug: InjectedBug,
    /// Workload that makes the defect observable.
    pub program: McProgram,
    /// Fixed configuration (backend the bug applies to, CM, allocator).
    pub run: RunConfig,
    /// Exploration strategy tuned to find it within budget.
    pub strategy: Strategy,
}

/// The full schedule-space mutation catalog: every [`InjectedBug`]
/// variant a *delay vector* can expose, each with its tuned recipe.
/// `tmstudy mc --quick` must catch all of them — a surviving mutant
/// means the explorer lost its teeth. The one deliberate absence is
/// [`InjectedBug::LeakOnAllocFail`]: its trigger is an allocation
/// *failure*, not an interleaving, so it belongs to the every-site OOM
/// sweep ([`crate::oom`]), which must catch it instead.
pub fn mutation_catalog() -> Vec<MutantRecipe> {
    let transfer = McProgram {
        base: TransferProgram::default(),
        kind: ProgramKind::Transfer,
    };
    let clean = RunConfig::clean();
    vec![
        // Lost update: writes skip ownership-record validation, so a
        // delayed transaction commits stale values over a concurrent
        // commit. One delayed point suffices.
        MutantRecipe {
            bug: InjectedBug::SkipWriteValidation,
            program: transfer,
            run: RunConfig {
                bug: InjectedBug::SkipWriteValidation,
                ..clean
            },
            strategy: Strategy::Exhaustive(EnumConfig {
                depth: 2,
                magnitudes: vec![400, 3200],
                ..EnumConfig::default()
            }),
        },
        // Torn snapshot: reads skip revalidation, which the plain
        // transfer masks (the write path re-covers the same stripes) but
        // a read-only observer commits.
        MutantRecipe {
            bug: InjectedBug::SkipReadValidation,
            program: McProgram {
                base: TransferProgram::default(),
                kind: ProgramKind::TransferObserver,
            },
            run: RunConfig {
                bug: InjectedBug::SkipReadValidation,
                ..clean
            },
            strategy: Strategy::Exhaustive(EnumConfig {
                depth: 2,
                magnitudes: vec![400, 3200],
                ..EnumConfig::default()
            }),
        },
        // NOrec commit races refresh the snapshot without value
        // validation: a commit landing in the read→commit window is
        // silently overwritten.
        MutantRecipe {
            bug: InjectedBug::NorecStaleSnapshot,
            program: transfer,
            run: RunConfig {
                backend: BackendKind::Norec,
                bug: InjectedBug::NorecStaleSnapshot,
                ..clean
            },
            strategy: Strategy::Exhaustive(EnumConfig {
                depth: 2,
                magnitudes: vec![400, 3200],
                ..EnumConfig::default()
            }),
        },
        // Transactional free applied eagerly at the call site: the node
        // is recycled while still published, so aborted retries double
        // free and conservation breaks. Allocator metadata couples every
        // transaction, so pruning is off.
        MutantRecipe {
            bug: InjectedBug::TxAllocEarlyFree,
            program: McProgram {
                base: TransferProgram::default(),
                kind: ProgramKind::AllocSwap,
            },
            run: RunConfig {
                bug: InjectedBug::TxAllocEarlyFree,
                ..clean
            },
            strategy: Strategy::Exhaustive(EnumConfig {
                depth: 2,
                magnitudes: vec![400, 3200],
                prune: false,
                ..EnumConfig::default()
            }),
        },
        // A committing serialization-token holder forgets the release:
        // needs enough consecutive aborts to escalate, so the recipe
        // leans on large delays that re-apply on every retry.
        MutantRecipe {
            bug: InjectedBug::SerializeTokenLeak,
            program: transfer,
            run: RunConfig {
                cm: CmKind::Serialize,
                bug: InjectedBug::SerializeTokenLeak,
                ..clean
            },
            strategy: Strategy::Exhaustive(EnumConfig {
                depth: 2,
                magnitudes: vec![3200, 25600],
                ..EnumConfig::default()
            }),
        },
    ]
}

fn config_kv(
    strategy: &Strategy,
    program: &McProgram,
    run: &RunConfig,
    depth_label: String,
) -> Vec<(String, String)> {
    let mut kv = vec![
        ("strategy".into(), strategy.name().into()),
        ("program".into(), program.kind.name().into()),
        ("backend".into(), run.backend.name().into()),
        ("cm".into(), run.cm.name().into()),
        ("alloc".into(), run.alloc.name().into()),
        ("bug".into(), run.bug.name().into()),
        ("depth".into(), depth_label),
    ];
    // Only label fault-injected cells: fault-free cells keep the exact
    // key set of the frozen pre-injection artifacts.
    if run.alloc_fault != tm_alloc::AllocFaultPlan::None {
        kv.push(("alloc-fault".into(), run.alloc_fault.to_string()));
    }
    kv
}

/// Shrink a raw violating delay vector to a minimal one that still
/// fails, using the proptest shrinking machinery over the same strategy
/// shape `tm-check` explores with. Returns the finished counterexample;
/// the shrunk vector is guaranteed (asserted) to still violate.
pub fn shrink_violation(
    program: &McProgram,
    run: &RunConfig,
    witness: Vec<u64>,
    detail: String,
    found_at: u64,
) -> McCounterexample {
    let max_delay = witness.iter().copied().max().unwrap_or(0) + 1;
    let strategy = delays(program.points(), max_delay);
    let check = |sched: &Vec<u64>| match run_schedule(program, run, sched) {
        Ok(()) => Ok(()),
        Err(d) => Err(TestCaseError::fail(d)),
    };
    let (minimal, err, steps) =
        shrink_failure(&strategy, witness, TestCaseError::fail(detail), 400, check);
    debug_assert!(
        run_schedule(program, run, &minimal).is_err(),
        "shrunk counterexample no longer fails"
    );
    McCounterexample {
        schedule: minimal,
        detail: format!("{err}"),
        found_at,
        shrink_steps: steps as u64,
    }
}

/// Run one clean-STM cell: bounded-exhaustive exploration that must find
/// nothing. Verdict `clean` on success, `violation` (with the shrunk
/// witness) if any schedule breaks an invariant. Uses the checkpointed
/// explorer; see [`run_clean_cell_opt`] for the from-scratch variant.
pub fn run_clean_cell(
    program: &McProgram,
    alloc: AllocatorKind,
    backend: BackendKind,
    cm: CmKind,
    ecfg: &EnumConfig,
) -> McCell {
    run_clean_cell_opt(
        program,
        alloc,
        backend,
        cm,
        ecfg,
        true,
        &mut SweepWork::default(),
    )
}

/// [`run_clean_cell`] with explicit control over checkpointing
/// (`checkpoint == false` forces the from-scratch enumerator, the
/// `tmstudy mc --no-checkpoint` escape hatch) and work accounting.
pub fn run_clean_cell_opt(
    program: &McProgram,
    alloc: AllocatorKind,
    backend: BackendKind,
    cm: CmKind,
    ecfg: &EnumConfig,
    checkpoint: bool,
    work: &mut SweepWork,
) -> McCell {
    run_clean_cell_fault_opt(
        program,
        alloc,
        tm_alloc::AllocFaultPlan::None,
        backend,
        cm,
        ecfg,
        checkpoint,
        work,
    )
}

/// [`run_clean_cell_opt`] with a static allocation-fault plan applied to
/// every explored schedule (the `tmstudy mc --alloc-fault` path). The
/// clean STM must absorb the plan's failures — transient ones retry,
/// and the cell stays `clean`; a plan harsh enough to exhaust the retry
/// budget legitimately surfaces as a violation, which is the point of
/// running it.
#[allow(clippy::too_many_arguments)]
pub fn run_clean_cell_fault_opt(
    program: &McProgram,
    alloc: AllocatorKind,
    alloc_fault: tm_alloc::AllocFaultPlan,
    backend: BackendKind,
    cm: CmKind,
    ecfg: &EnumConfig,
    checkpoint: bool,
    work: &mut SweepWork,
) -> McCell {
    let run = RunConfig {
        alloc,
        backend,
        cm,
        alloc_fault,
        ..RunConfig::clean()
    };
    let strategy = Strategy::Exhaustive(ecfg.clone());
    let config = config_kv(&strategy, program, &run, ecfg.depth.to_string());
    let (stats, found) = sweep_exhaustive(program, &run, ecfg, checkpoint, work);
    match found {
        None => McCell {
            config,
            verdict: McVerdict::Clean,
            explored: stats.explored,
            pruned: stats.pruned,
            deduped: stats.deduped,
            capped: stats.capped,
            counterexample: None,
        },
        Some((witness, detail)) => {
            let cx = shrink_violation(program, &run, witness, detail, stats.explored);
            McCell {
                config,
                verdict: McVerdict::Violation,
                explored: stats.explored,
                pruned: stats.pruned,
                deduped: stats.deduped,
                capped: stats.capped,
                counterexample: Some(cx),
            }
        }
    }
}

/// Run one mutation-catalog cell: the explorer must find a violation,
/// shrink it, and the shrunk schedule must both replay against the
/// mutant and pass on the clean STM (so the failure is the bug's, not
/// the harness's). Verdict `caught` when all of that holds, `escaped`
/// when the budget runs dry, `violation` when the shrunk witness fails
/// the replay discipline.
pub fn run_mutant_cell(recipe: &MutantRecipe) -> McCell {
    run_mutant_cell_opt(recipe, true, &mut SweepWork::default())
}

/// [`run_mutant_cell`] with explicit control over checkpointing and work
/// accounting. Pct recipes ignore `checkpoint` — randomized trials have
/// no shared prefix to restore to.
pub fn run_mutant_cell_opt(
    recipe: &MutantRecipe,
    checkpoint: bool,
    work: &mut SweepWork,
) -> McCell {
    let depth_label = match &recipe.strategy {
        Strategy::Exhaustive(e) => e.depth.to_string(),
        Strategy::Pct(p) => p.depth.to_string(),
    };
    let config = config_kv(&recipe.strategy, &recipe.program, &recipe.run, depth_label);
    let (stats, found) = match &recipe.strategy {
        Strategy::Exhaustive(ecfg) => {
            sweep_exhaustive(&recipe.program, &recipe.run, ecfg, checkpoint, work)
        }
        Strategy::Pct(pcfg) => {
            let (trials, found) = pct_explore(&recipe.program, &recipe.run, pcfg);
            work.absorb(trials, 0, None);
            (
                EnumStats {
                    explored: trials,
                    ..EnumStats::default()
                },
                found,
            )
        }
    };
    match found {
        None => McCell {
            config,
            verdict: McVerdict::Escaped,
            explored: stats.explored,
            pruned: stats.pruned,
            deduped: stats.deduped,
            capped: stats.capped,
            counterexample: None,
        },
        Some((witness, detail)) => {
            let cx = shrink_violation(
                &recipe.program,
                &recipe.run,
                witness,
                detail,
                stats.explored,
            );
            // Replay discipline: the minimal schedule must still fail on
            // the mutant and must pass on the clean STM.
            let replays = run_schedule(&recipe.program, &recipe.run, &cx.schedule).is_err();
            let clean_run = RunConfig {
                bug: InjectedBug::None,
                ..recipe.run
            };
            let clean_ok = run_schedule(&recipe.program, &clean_run, &cx.schedule).is_ok();
            let verdict = if replays && clean_ok {
                McVerdict::Caught
            } else {
                McVerdict::Violation
            };
            McCell {
                config,
                verdict,
                explored: stats.explored,
                pruned: stats.pruned,
                deduped: stats.deduped,
                capped: stats.capped,
                counterexample: Some(cx),
            }
        }
    }
}

/// The small program whose bounded schedule space the clean sweep covers
/// exhaustively: 3 threads × 2 transactions over 2 cells (6 scheduling
/// points).
pub fn small_program() -> McProgram {
    McProgram {
        base: TransferProgram {
            threads: 3,
            cells: 2,
            txns: 2,
            ..TransferProgram::default()
        },
        kind: ProgramKind::Transfer,
    }
}

/// Enumeration shape of the quick clean sweep: every support of up to
/// `depth` points, one magnitude.
pub fn quick_clean_config(depth: usize) -> EnumConfig {
    EnumConfig {
        depth,
        magnitudes: vec![400],
        ..EnumConfig::default()
    }
}

/// The `tmstudy mc --quick` suite: the full mutation catalog plus a
/// depth-`depth` exhaustive clean sweep of [`small_program`] across
/// every backend × contention-manager combination.
pub fn quick_report(name: &str, depth: usize) -> McReport {
    quick_report_opt(name, depth, true).0
}

/// [`quick_report`] with explicit checkpoint control, also returning the
/// sweep's aggregated work so the caller can attach a throughput block
/// (it owns the wall-clock measurement).
pub fn quick_report_opt(name: &str, depth: usize, checkpoint: bool) -> (McReport, SweepWork) {
    let mut work = SweepWork::default();
    let mut report = McReport::new(name)
        .meta("mode", "quick")
        .meta("clean_depth", depth);
    for recipe in mutation_catalog() {
        report
            .cells
            .push(run_mutant_cell_opt(&recipe, checkpoint, &mut work));
    }
    let program = small_program();
    let ecfg = quick_clean_config(depth);
    for backend in BackendKind::ALL {
        for cm in CmKind::ALL {
            report.cells.push(run_clean_cell_opt(
                &program,
                AllocatorKind::TbbMalloc,
                backend,
                cm,
                &ecfg,
                checkpoint,
                &mut work,
            ));
        }
    }
    // A sparse program (many more cells than transactions) where the
    // conflict relation actually removes schedules, so the artifact
    // demonstrates a non-zero `pruned` count.
    report.cells.push(run_clean_cell_opt(
        &sparse_program(),
        AllocatorKind::TbbMalloc,
        BackendKind::Etl,
        CmKind::Suicide,
        &quick_clean_config(2),
        checkpoint,
        &mut work,
    ));
    (report, work)
}

/// A transfer program with far more cells than transactions, leaving
/// many scheduling points conflict-free: the shape that shows the
/// pruning machinery paying off.
pub fn sparse_program() -> McProgram {
    McProgram {
        base: TransferProgram {
            threads: 3,
            cells: 64,
            txns: 4,
            ..TransferProgram::default()
        },
        kind: ProgramKind::Transfer,
    }
}

/// The mc rows of the `tmstudy check` matrix: one cell per catalog
/// mutant (must be caught) plus one clean exhaustive cell per backend
/// (must stay clean), converted to the check-report cell shape.
pub fn check_cells() -> Vec<tm_obs::CheckCell> {
    let mut out = Vec::new();
    for recipe in mutation_catalog() {
        out.push(mc_cell_to_check(run_mutant_cell(&recipe)));
    }
    let program = small_program();
    let ecfg = quick_clean_config(2);
    for backend in BackendKind::ALL {
        out.push(mc_cell_to_check(run_clean_cell(
            &program,
            AllocatorKind::TbbMalloc,
            backend,
            CmKind::Suicide,
            &ecfg,
        )));
    }
    out
}

fn mc_cell_to_check(cell: McCell) -> tm_obs::CheckCell {
    let mut config = vec![("kind".to_string(), "mc".to_string())];
    config.extend(cell.config.iter().cloned());
    let mut checks = vec![
        ("explored".to_string(), cell.explored),
        ("pruned".to_string(), cell.pruned),
    ];
    // Dedup is structurally absent on the catalog cells (every pool
    // point is consulted, so any delay perturbs the trace hash); surface
    // it only when it actually fires so existing matrices stay stable.
    if cell.deduped > 0 {
        checks.push(("deduped".to_string(), cell.deduped));
    }
    let mut failures = Vec::new();
    if let Some(cx) = &cell.counterexample {
        checks.push(("shrink_steps".to_string(), cx.shrink_steps));
        checks.push((
            "minimal_weight".to_string(),
            cx.schedule.iter().sum::<u64>(),
        ));
    }
    if !cell.verdict.is_expected() {
        let evidence = cell
            .counterexample
            .as_ref()
            .map(|cx| format!(": {}", cx.detail))
            .unwrap_or_default();
        failures.push(format!("mc verdict {}{evidence}", cell.verdict.name()));
    }
    let mut out = tm_check::cell_from(config, checks, failures);
    if out.status == tm_obs::CheckStatus::Pass {
        out.detail = Some(format!("verdict {}", cell.verdict.name()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_fault_cell_stays_clean_and_is_labelled() {
        // One single-shot injection per explored schedule: the retry
        // machinery absorbs it under every interleaving, so the clean
        // sweep stays clean; the cell's config carries the plan token.
        let program = crate::oom::oom_program();
        let ecfg = quick_clean_config(1);
        let cell = run_clean_cell_fault_opt(
            &program,
            AllocatorKind::TbbMalloc,
            tm_alloc::AllocFaultPlan::NthSite(5),
            BackendKind::Etl,
            CmKind::Suicide,
            &ecfg,
            true,
            &mut SweepWork::default(),
        );
        assert_eq!(cell.verdict, McVerdict::Clean, "{:?}", cell.counterexample);
        assert!(
            cell.config
                .iter()
                .any(|(k, v)| k == "alloc-fault" && v == "site:5"),
            "missing alloc-fault label: {:?}",
            cell.config
        );
        // Fault-free cells must NOT grow the new key (frozen artifacts).
        let clean = run_clean_cell_opt(
            &program,
            AllocatorKind::TbbMalloc,
            BackendKind::Etl,
            CmKind::Suicide,
            &ecfg,
            true,
            &mut SweepWork::default(),
        );
        assert!(!clean.config.iter().any(|(k, _)| k == "alloc-fault"));
    }

    #[test]
    fn catalog_covers_every_injected_bug() {
        let catalog = mutation_catalog();
        let bugs: Vec<InjectedBug> = catalog.iter().map(|r| r.bug).collect();
        for bug in [
            InjectedBug::SkipWriteValidation,
            InjectedBug::SkipReadValidation,
            InjectedBug::NorecStaleSnapshot,
            InjectedBug::TxAllocEarlyFree,
            InjectedBug::SerializeTokenLeak,
        ] {
            assert!(bugs.contains(&bug), "catalog missing {bug:?}");
        }
        // LeakOnAllocFail triggers on allocation *failure*, not on an
        // interleaving: no delay vector can expose it, so it is owned by
        // the every-site OOM sweep (see crate::oom) — deliberately not a
        // schedule-catalog recipe.
        assert!(
            !bugs.contains(&InjectedBug::LeakOnAllocFail),
            "leak-on-alloc-fail belongs to the oom sweep, not the schedule catalog"
        );
        for r in &catalog {
            assert_eq!(r.run.bug, r.bug, "recipe bug mismatch for {:?}", r.bug);
            assert!(
                r.bug.applies_to(r.run.backend),
                "{:?} does not apply to {:?}",
                r.bug,
                r.run.backend
            );
        }
    }

    #[test]
    fn skip_write_validation_mutant_is_caught_and_shrunk() {
        let catalog = mutation_catalog();
        let recipe = catalog
            .iter()
            .find(|r| r.bug == InjectedBug::SkipWriteValidation)
            .unwrap();
        let cell = run_mutant_cell(recipe);
        assert_eq!(cell.verdict, McVerdict::Caught, "{:?}", cell.counterexample);
        let cx = cell.counterexample.unwrap();
        assert!(cx.shrink_steps > 0, "no shrinking happened");
        assert!(
            cx.schedule.iter().filter(|&&d| d > 0).count() <= 2,
            "minimal schedule should have tiny support: {:?}",
            cx.schedule
        );
    }

    #[test]
    fn clean_small_sweep_is_clean_at_depth_2() {
        let cell = run_clean_cell(
            &small_program(),
            AllocatorKind::TbbMalloc,
            BackendKind::Etl,
            CmKind::Suicide,
            &quick_clean_config(2),
        );
        assert_eq!(cell.verdict, McVerdict::Clean, "{:?}", cell.counterexample);
        assert!(cell.explored > 1);
    }
}
