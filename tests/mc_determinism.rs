//! Determinism gate for the schedule model checker's artifacts.
//!
//! An `tm-mc-report/v1` document is a function of `(programs, configs,
//! depth)` alone: the explorer runs fixed schedule sweeps over a
//! deterministic simulation, so the full JSON — verdicts, exploration
//! counters, and every shrunk counterexample delay vector — must be
//! byte-identical run-to-run, equal to a committed golden, *and*
//! independent of which executor backend (fibers or OS threads) carried
//! the simulated threads. If an intentional model change shifts the
//! numbers, re-bless with `GOLDEN_BLESS=1 cargo test -p tm-mc --test
//! mc_determinism`.

use tm_alloc::AllocatorKind;
use tm_stm::{BackendKind, CmKind, InjectedBug};

/// A compact but representative mc report: one caught mutant (with its
/// shrunk counterexample), one clean exhaustive cell per backend, and
/// the sparse program that exercises conflict pruning.
fn mc_json() -> String {
    let mut report = tm_obs::McReport::new("mc_determinism").meta("depth", 2);
    let catalog = tm_mc::mutation_catalog();
    let recipe = catalog
        .iter()
        .find(|r| r.bug == InjectedBug::SkipWriteValidation)
        .expect("catalog always carries the lost-update mutant");
    report.cells.push(tm_mc::run_mutant_cell(recipe));
    for backend in BackendKind::ALL {
        report.cells.push(tm_mc::run_clean_cell(
            &tm_mc::small_program(),
            AllocatorKind::TbbMalloc,
            backend,
            CmKind::Suicide,
            &tm_mc::quick_clean_config(2),
        ));
    }
    report.cells.push(tm_mc::run_clean_cell(
        &tm_mc::sparse_program(),
        AllocatorKind::TbbMalloc,
        BackendKind::Etl,
        CmKind::Suicide,
        &tm_mc::quick_clean_config(2),
    ));
    report.to_json_string()
}

fn check_golden(name: &str, actual: &str) {
    let full = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var("GOLDEN_BLESS").is_ok() {
        std::fs::write(&full, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&full)
        .unwrap_or_else(|e| panic!("missing golden file {full} ({e}); run with GOLDEN_BLESS=1"));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden — the explorer's verdicts or \
         counterexamples are no longer reproducible; bless only if the \
         model intentionally changed"
    );
}

/// A single test function owns the process-global `TM_SIM_EXEC` variable
/// (read once per `Sim::new`), so the two executor backends cannot race
/// on it with another test.
#[test]
fn mc_report_replays_across_runs_and_executors() {
    std::env::set_var("TM_SIM_EXEC", "fibers");
    let first = mc_json();
    let second = mc_json();
    assert_eq!(first, second, "fibers: two runs disagree on the report");
    assert!(
        first.contains("tm-mc-report/v1"),
        "report schema changed: {first}"
    );
    assert!(
        first.contains("\"caught\"") && first.contains("\"clean\""),
        "report lost its expected verdict mix: {first}"
    );

    std::env::set_var("TM_SIM_EXEC", "threads");
    let threads = mc_json();
    std::env::remove_var("TM_SIM_EXEC");
    assert_eq!(
        first, threads,
        "the mc report depends on the executor backend"
    );

    check_golden("mc_determinism.json", &first);
}
