//! CLI-level contract of `tmstudy mc`: flag validation exit codes and
//! the schema of the artifact it writes with and without checkpointed
//! execution.

use std::process::Command;

fn tmstudy() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tmstudy"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tmstudy-mc-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn no_checkpoint_with_stray_token_exits_2() {
    let out = tmstudy()
        .args(["mc", "--no-checkpoint", "bogus"])
        .output()
        .expect("run tmstudy");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("stray token 'bogus'"), "{stderr}");
}

#[test]
fn checkpoint_writes_v1_1_and_no_checkpoint_stays_v1() {
    let ck = tmp("ck.mc.json");
    let out = tmstudy()
        .args(["mc", "--depth", "1", "--backend", "etl", "--cm", "suicide"])
        .args(["--out", ck.to_str().unwrap()])
        .output()
        .expect("run tmstudy");
    assert!(out.status.success(), "{out:?}");
    let ck_json = std::fs::read_to_string(&ck).unwrap();
    assert!(
        ck_json.contains("\"schema\": \"tm-mc-report/v1.1\""),
        "checkpointed artifact must carry the throughput block: {ck_json}"
    );
    assert!(ck_json.contains("\"throughput\""), "{ck_json}");

    let plain = tmp("plain.mc.json");
    let out = tmstudy()
        .args(["mc", "--depth", "1", "--backend", "etl", "--cm", "suicide"])
        .args(["--no-checkpoint", "--out", plain.to_str().unwrap()])
        .output()
        .expect("run tmstudy");
    assert!(out.status.success(), "{out:?}");
    let plain_json = std::fs::read_to_string(&plain).unwrap();
    assert!(
        plain_json.contains("\"schema\": \"tm-mc-report/v1\","),
        "from-scratch artifact must stay plain v1: {plain_json}"
    );
    assert!(!plain_json.contains("\"throughput\""), "{plain_json}");
}
