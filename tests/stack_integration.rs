//! Whole-stack integration tests: machine + allocator + STM + data
//! structures + harness, exercised together across every allocator.

use std::sync::Arc;
use tm_alloc::AllocatorKind;
use tm_core::synthetic::{run_synthetic, SyntheticConfig};
use tm_core::{build_stack, Stack};
use tm_ds::{StructureKind, TxHashSet, TxList, TxRbTree, TxSet};
use tm_stm::{Stm, StmConfig};

fn tiny(structure: StructureKind, kind: AllocatorKind, threads: usize) -> tm_core::Metrics {
    let mut cfg = SyntheticConfig::scaled(structure, kind, threads);
    cfg.initial_size = 48;
    cfg.key_range = 96;
    cfg.ops_per_thread = 80;
    cfg.buckets = 1 << 10;
    run_synthetic(&cfg)
}

#[test]
fn every_allocator_runs_every_structure() {
    for kind in AllocatorKind::ALL {
        for s in StructureKind::ALL {
            let m = tiny(s, kind, 4);
            assert!(m.commits > 0, "{kind:?}/{s:?}: no commits");
            assert!(m.seconds > 0.0);
            assert!(m.l1_miss >= 0.0 && m.l1_miss <= 1.0);
        }
    }
}

#[test]
fn full_stack_is_deterministic_per_allocator() {
    for kind in AllocatorKind::ALL {
        let a = tiny(StructureKind::RbTree, kind, 6);
        let b = tiny(StructureKind::RbTree, kind, 6);
        assert_eq!(a.seconds, b.seconds, "{kind:?}: nondeterministic time");
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.aborts, b.aborts);
        assert_eq!(a.l1_miss, b.l1_miss);
    }
}

#[test]
fn structures_share_one_heap_without_interference() {
    // A list, a hash set and a tree all carved from the same allocator, all
    // mutated concurrently: each must keep its own invariants.
    let Stack { sim, stm, .. } = build_stack(AllocatorKind::TcMalloc, StmConfig::default());
    let handles = parking_lot::Mutex::new(None);
    sim.run(1, |ctx| {
        let l = TxList::new(&stm, ctx);
        let h = TxHashSet::new(&stm, ctx, 1 << 10);
        let t = TxRbTree::new(&stm, ctx);
        *handles.lock() = Some((l, h, t));
    });
    sim.run(6, |ctx| {
        let (l, h, t) = handles.lock().unwrap();
        let mut th = stm.thread(ctx.tid());
        // Disjoint per-thread key ranges: operations on one key are then
        // sequential (per thread), so all three structures must converge
        // to identical contents regardless of cross-structure interleaving.
        let base = ctx.tid() as u64 * 10;
        for i in 0..40u64 {
            let k = base + (i * 7) % 10;
            l.insert(&stm, ctx, &mut th, k);
            h.insert(&stm, ctx, &mut th, k);
            t.insert(&stm, ctx, &mut th, k);
            if i % 3 == 0 {
                l.remove(&stm, ctx, &mut th, k);
                h.remove(&stm, ctx, &mut th, k);
                t.remove(&stm, ctx, &mut th, k);
            }
        }
        stm.retire(th);
    });
    sim.run(1, |ctx| {
        let (l, h, t) = handles.lock().unwrap();
        assert!(l.is_sorted_raw(ctx), "list lost its sort order");
        t.check_invariants_raw(ctx);
        // Set agreement: all three structures received identical op
        // sequences per thread, so they must contain the same keys.
        let mut th = stm.thread(0);
        for k in 0..64u64 {
            let in_l = l.contains(&stm, ctx, &mut th, k);
            let in_h = h.contains(&stm, ctx, &mut th, k);
            let in_t = t.contains(&stm, ctx, &mut th, k);
            assert_eq!(in_l, in_h, "list vs hash diverged on {k}");
            assert_eq!(in_l, in_t, "list vs tree diverged on {k}");
        }
        stm.retire(th);
    });
}

#[test]
fn quiesce_returns_limbo_blocks() {
    let Stack { sim, stm, .. } = build_stack(AllocatorKind::TbbMalloc, StmConfig::default());
    let list = parking_lot::Mutex::new(None);
    sim.run(1, |ctx| {
        let l = TxList::new(&stm, ctx);
        let mut th = stm.thread(0);
        for k in 0..32u64 {
            l.insert(&stm, ctx, &mut th, k);
        }
        for k in 0..32u64 {
            l.remove(&stm, ctx, &mut th, k);
        }
        stm.retire(th);
        *list.lock() = Some(l);
    });
    // After quiescing, freed nodes are truly back in the allocator: a fresh
    // allocation reuses a recycled address.
    sim.run(1, |ctx| {
        stm.quiesce(ctx);
        let p = stm.allocator().malloc(ctx, 16);
        // TBB recycles LIFO from the private list; the address must be one
        // of the just-freed node slots (all below the current bump).
        let q = stm.allocator().malloc(ctx, 16);
        assert_ne!(p, q);
        stm.allocator().free(ctx, p);
        stm.allocator().free(ctx, q);
    });
}

#[test]
fn object_cache_stack_integration() {
    // With the §6.2 optimization on, a churn workload must hit the cache.
    let sim = tm_sim::Sim::new(tm_sim::MachineConfig::xeon_e5405());
    let alloc = AllocatorKind::Glibc.build(&sim);
    let stm = Arc::new(Stm::new(
        &sim,
        alloc,
        StmConfig {
            object_cache: true,
            ..StmConfig::default()
        },
    ));
    let list = parking_lot::Mutex::new(None);
    sim.run(1, |ctx| {
        *list.lock() = Some(TxList::new(&stm, ctx));
    });
    sim.run(2, |ctx| {
        let l = list.lock().unwrap();
        let mut th = stm.thread(ctx.tid());
        let base = ctx.tid() as u64 * 1000;
        for i in 0..60u64 {
            l.insert(&stm, ctx, &mut th, base + i % 8);
            l.remove(&stm, ctx, &mut th, base + i % 8);
        }
        stm.retire(th);
    });
    let stats = stm.stats();
    assert!(
        stats.cache_hits > 0,
        "object cache never hit under alloc/free churn"
    );
}
