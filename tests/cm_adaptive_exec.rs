//! The adaptive contention manager's switch transcript is part of the
//! determinism contract: every policy change is driven only by per-thread
//! window counters and the virtual clock, so the exact `(thread, window,
//! virtual-time, from → to)` sequence must replay identically run-to-run
//! *and* be independent of which executor backend (fibers or OS threads)
//! carried the logical threads.
//!
//! A single test function owns the process-global `TM_SIM_EXEC` variable
//! (read once per `Sim::new`), so the two backends cannot race on it.

use tm_alloc::AllocatorKind;
use tm_core::synthetic::{run_synthetic_cm, SyntheticConfig};
use tm_ds::StructureKind;
use tm_stm::{CmKind, CmStats, CmSwitch};

fn transcript() -> (Vec<(usize, CmSwitch)>, CmStats, u64) {
    let mut cfg = SyntheticConfig::scaled(StructureKind::LinkedList, AllocatorKind::TbbMalloc, 8);
    cfg.cm = CmKind::Adaptive;
    let (m, stats, switches) = run_synthetic_cm(&cfg);
    (switches, stats, m.commits)
}

#[test]
fn adaptive_switch_points_replay_across_runs_and_executors() {
    std::env::set_var("TM_SIM_EXEC", "fibers");
    let first = transcript();
    let second = transcript();
    assert_eq!(first, second, "fibers: two runs disagree on the transcript");
    assert!(
        !first.0.is_empty(),
        "the high-contention list must trigger at least one policy switch"
    );
    assert_ne!(
        first.1.dominant_policy(),
        CmKind::Suicide,
        "the controller must escalate away from the initial policy"
    );

    std::env::set_var("TM_SIM_EXEC", "threads");
    let threads = transcript();
    std::env::remove_var("TM_SIM_EXEC");
    assert_eq!(
        first, threads,
        "the switch transcript depends on the executor backend"
    );
}
