//! Checkpoint-fidelity gate: restore-based exploration must be
//! observationally identical to from-scratch enumeration.
//!
//! The explorer's whole value rests on the claim that restoring the
//! post-seeding root checkpoint and running a schedule tail is
//! indistinguishable from rebuilding the world and replaying from
//! virtual-time zero. This suite asserts that claim end to end: every
//! clean-cell artifact (verdicts, exploration counters) and every
//! mutant-catalog artifact (including the shrunk minimal delay vectors)
//! produced with checkpointing must equal its from-scratch twin — not
//! merely semantically, but byte-identical as serialized reports — under
//! both executor backends.

use tm_alloc::AllocatorKind;
use tm_check::TransferProgram;
use tm_mc::{McProgram, ProgramKind, SweepWork};
use tm_obs::{McReport, McVerdict};
use tm_stm::{BackendKind, CmKind};

/// The three oracle programs: the plain transfer workload, a read-only
/// observer variant (torn-snapshot sensitive), and the sparse program
/// whose conflict relation actually prunes.
fn oracle_programs() -> Vec<(&'static str, McProgram)> {
    let observer = McProgram {
        base: TransferProgram {
            threads: 3,
            cells: 2,
            txns: 2,
            ..TransferProgram::default()
        },
        kind: ProgramKind::TransferObserver,
    };
    vec![
        ("transfer", tm_mc::small_program()),
        ("observer", observer),
        ("sparse", tm_mc::sparse_program()),
    ]
}

/// CM sample: the default, an exponential-backoff policy, and the
/// serialization fallback (the one with extra quiescence invariants).
const CM_SAMPLE: [CmKind; 3] = [CmKind::Suicide, CmKind::BackoffExp, CmKind::Serialize];

fn clean_reports(exec: &str) -> (String, SweepWork) {
    let ecfg = tm_mc::quick_clean_config(2);
    let mut checkpointed = McReport::new("equivalence");
    let mut scratch = McReport::new("equivalence");
    let mut work = SweepWork::default();
    for (label, program) in oracle_programs() {
        for backend in BackendKind::ALL {
            for cm in CM_SAMPLE {
                let ck = tm_mc::run_clean_cell_opt(
                    &program,
                    AllocatorKind::TbbMalloc,
                    backend,
                    cm,
                    &ecfg,
                    true,
                    &mut work,
                );
                let fs = tm_mc::run_clean_cell_opt(
                    &program,
                    AllocatorKind::TbbMalloc,
                    backend,
                    cm,
                    &ecfg,
                    false,
                    &mut SweepWork::default(),
                );
                assert_eq!(ck.verdict, McVerdict::Clean, "[{exec}] {label} {ck:?}");
                assert_eq!(
                    ck, fs,
                    "[{exec}] checkpointed {label}/{backend:?}/{cm:?} cell \
                     diverged from its from-scratch twin"
                );
                checkpointed.cells.push(ck);
                scratch.cells.push(fs);
            }
        }
    }
    let (ck_json, fs_json) = (checkpointed.to_json_string(), scratch.to_json_string());
    assert_eq!(
        ck_json, fs_json,
        "[{exec}] serialized clean reports are not byte-identical"
    );
    (ck_json, work)
}

fn catalog_report(exec: &str, checkpoint: bool) -> (String, SweepWork) {
    let mut report = McReport::new("catalog-equivalence");
    let mut work = SweepWork::default();
    for recipe in tm_mc::mutation_catalog() {
        let cell = tm_mc::run_mutant_cell_opt(&recipe, checkpoint, &mut work);
        assert_eq!(
            cell.verdict,
            McVerdict::Caught,
            "[{exec}] {:?} escaped (checkpoint={checkpoint}): {:?}",
            recipe.bug,
            cell.counterexample
        );
        assert!(
            cell.counterexample.is_some(),
            "[{exec}] caught mutant without a counterexample"
        );
        report.cells.push(cell);
    }
    (report.to_json_string(), work)
}

/// A single test function owns the process-global `TM_SIM_EXEC` variable
/// (read once per `Sim::new`), so the two executor backends cannot race
/// on it with another test.
#[test]
fn checkpointed_exploration_matches_from_scratch_everywhere() {
    let mut per_exec = Vec::new();
    for exec in ["fibers", "threads"] {
        std::env::set_var("TM_SIM_EXEC", exec);

        let (clean_json, work) = clean_reports(exec);
        // The checkpointed sweep must actually have checkpointed: one
        // root per clean cell. (Transfer-family seeding writes memory
        // directly without scheduler events, so `replay_steps_saved`
        // is legitimately 0 here; the catalog below covers it.)
        let cells = (oracle_programs().len() * BackendKind::ALL.len() * CM_SAMPLE.len()) as u64;
        assert_eq!(
            work.checkpoints_taken, cells,
            "[{exec}] expected one root checkpoint per clean cell"
        );

        // Full mutant catalog: caught, shrunk, and the minimal delay
        // vectors byte-identical between the two execution strategies.
        let (ck, ck_work) = catalog_report(exec, true);
        let (fs, fs_work) = catalog_report(exec, false);
        assert_eq!(
            ck, fs,
            "[{exec}] catalog verdicts or minimal counterexamples differ \
             between checkpointed and from-scratch exploration"
        );
        // The AllocSwap mutant seeds its heap through the scheduler, so
        // its restores skip real event replay — visible only on the
        // checkpointed side.
        assert!(
            ck_work.replay_steps_saved > 0,
            "[{exec}] restores saved no replay work"
        );
        assert_eq!(fs_work.replay_steps_saved, 0, "[{exec}] from-scratch");
        assert_eq!(fs_work.checkpoints_taken, 0, "[{exec}] from-scratch");

        per_exec.push((clean_json, ck));
    }
    std::env::remove_var("TM_SIM_EXEC");

    let (fibers_clean, fibers_catalog) = &per_exec[0];
    let (threads_clean, threads_catalog) = &per_exec[1];
    assert_eq!(
        fibers_clean, threads_clean,
        "clean equivalence artifacts depend on the executor backend"
    );
    // Catalog cells are compared structurally: the *detail* string of a
    // panicking counterexample is executor-specific (the OS-thread
    // backend reports std's generic scoped-thread payload), but the
    // verdicts, exploration counters, and minimal delay vectors must
    // agree.
    let fc = parse_mc(fibers_catalog);
    let tc = parse_mc(threads_catalog);
    assert_eq!(fc.cells.len(), tc.cells.len());
    for (f, t) in fc.cells.iter().zip(tc.cells.iter()) {
        assert_eq!(f.config, t.config);
        assert_eq!(f.verdict, t.verdict, "{:?}", f.config);
        assert_eq!((f.explored, f.pruned), (t.explored, t.pruned));
        let (fx, tx) = (f.counterexample.as_ref(), t.counterexample.as_ref());
        let fx = fx.expect("caught mutant has a counterexample");
        let tx = tx.expect("caught mutant has a counterexample");
        assert_eq!(
            fx.schedule, tx.schedule,
            "minimal delay vector depends on the executor backend: {:?}",
            f.config
        );
        assert_eq!(
            (fx.found_at, fx.shrink_steps),
            (tx.found_at, tx.shrink_steps)
        );
    }
}

fn parse_mc(json: &str) -> McReport {
    let tree = tm_obs::json::Json::parse(json).expect("artifact is JSON");
    McReport::from_json(&tree).expect("artifact parses as an mc report")
}
