//! Application-level correctness across the allocator axis: every STAMP
//! port runs, terminates, verifies its invariants, and behaves
//! deterministically under every allocator model. (`run_app` internally
//! invokes each app's `verify`.)

use tm_alloc::AllocatorKind;
use tm_stamp::runner::{run_kind, StampOpts};
use tm_stamp::AppKind;

#[test]
fn every_app_on_every_allocator() {
    for app in AppKind::ALL {
        for kind in AllocatorKind::ALL {
            let r = run_kind(app, kind, 2, &StampOpts::default(), 1);
            assert!(
                r.par_seconds > 0.0,
                "{}/{:?}: empty parallel phase",
                app.name(),
                kind
            );
        }
    }
}

#[test]
fn thread_scaling_preserves_invariants() {
    // verify() runs inside run_kind; crossing thread counts is the stress.
    for app in [AppKind::Intruder, AppKind::Yada, AppKind::Vacation] {
        for threads in [1, 3, 8] {
            run_kind(
                app,
                AllocatorKind::TcMalloc,
                threads,
                &StampOpts::default(),
                1,
            );
        }
    }
}

#[test]
fn object_cache_does_not_break_apps() {
    let opts = StampOpts {
        object_cache: true,
        ..StampOpts::default()
    };
    for app in [
        AppKind::Genome,
        AppKind::Intruder,
        AppKind::Vacation,
        AppKind::Yada,
    ] {
        let r = run_kind(app, AllocatorKind::Glibc, 4, &opts, 1);
        assert!(
            r.commits > 0,
            "{}: no commits with object cache",
            app.name()
        );
    }
}

#[test]
fn shift_4_does_not_break_apps() {
    let opts = StampOpts {
        shift: 4,
        ..StampOpts::default()
    };
    for app in [AppKind::Genome, AppKind::Yada] {
        let r = run_kind(app, AllocatorKind::Hoard, 4, &opts, 1);
        assert!(r.commits > 0);
    }
}

#[test]
fn stamp_runs_are_deterministic() {
    for app in [AppKind::Bayes, AppKind::Labyrinth] {
        let a = run_kind(app, AllocatorKind::Hoard, 4, &StampOpts::default(), 1);
        let b = run_kind(app, AllocatorKind::Hoard, 4, &StampOpts::default(), 1);
        assert_eq!(a.par_seconds, b.par_seconds, "{}", app.name());
        assert_eq!(a.commits, b.commits);
    }
}
