//! The paper's qualitative claims, asserted as tests at reduced scale.
//! Each test names the exhibit it guards. These are the reproduction's
//! regression suite: if a model change breaks a paper effect, it fails.

use tm_alloc::AllocatorKind;
use tm_core::synthetic::{run_synthetic, SyntheticConfig};
use tm_core::threadtest::{run_threadtest, ThreadtestConfig};
use tm_ds::StructureKind;
use tm_stamp::runner::{run_kind, StampOpts};
use tm_stamp::AppKind;

fn synth(
    structure: StructureKind,
    kind: AllocatorKind,
    threads: usize,
    shift: u32,
) -> tm_core::Metrics {
    let mut cfg = SyntheticConfig::scaled(structure, kind, threads);
    cfg.ops_per_thread = match structure {
        StructureKind::LinkedList => 150,
        _ => 1200,
    };
    cfg.shift = shift;
    run_synthetic(&cfg)
}

/// Table 4 / Fig. 5: Glibc's 32-byte blocks avoid the stripe sharing that
/// gives the 16-byte allocators extra false aborts on the sorted list.
#[test]
fn table4_glibc_list_aborts_lowest() {
    let glibc = synth(StructureKind::LinkedList, AllocatorKind::Glibc, 4, 5);
    for other in [
        AllocatorKind::Hoard,
        AllocatorKind::TbbMalloc,
        AllocatorKind::TcMalloc,
    ] {
        let m = synth(StructureKind::LinkedList, other, 4, 5);
        assert!(
            m.abort_ratio > glibc.abort_ratio,
            "{other:?} aborts {:.3} should exceed Glibc {:.3}",
            m.abort_ratio,
            glibc.abort_ratio
        );
    }
}

/// Table 4: Glibc's per-block metadata and 32-byte blocks cost locality —
/// its L1 miss ratio on the list exceeds the compact allocators'.
#[test]
fn table4_glibc_list_l1_misses_highest() {
    let glibc = synth(StructureKind::LinkedList, AllocatorKind::Glibc, 4, 5);
    let tbb = synth(StructureKind::LinkedList, AllocatorKind::TbbMalloc, 4, 5);
    assert!(
        glibc.l1_miss > tbb.l1_miss,
        "Glibc L1 {:.4} should exceed TBB {:.4}",
        glibc.l1_miss,
        tbb.l1_miss
    );
}

/// Fig. 6: halving the stripe (shift 4) removes the 16-byte allocators'
/// false aborts on the list but only costs Glibc ORT pressure.
#[test]
fn fig6_shift4_helps_16b_allocators_not_glibc() {
    let tbb5 = synth(StructureKind::LinkedList, AllocatorKind::TbbMalloc, 4, 5);
    let tbb4 = synth(StructureKind::LinkedList, AllocatorKind::TbbMalloc, 4, 4);
    assert!(
        tbb4.abort_ratio < tbb5.abort_ratio,
        "shift 4 must cut TBB's false aborts ({:.3} -> {:.3})",
        tbb5.abort_ratio,
        tbb4.abort_ratio
    );
    let glibc5 = synth(StructureKind::LinkedList, AllocatorKind::Glibc, 1, 5);
    let glibc4 = synth(StructureKind::LinkedList, AllocatorKind::Glibc, 1, 4);
    // At 1 core there are no conflicts to win back: shift 4 is pure loss.
    assert!(
        glibc4.throughput < glibc5.throughput,
        "shift 4 must cost Glibc at 1 core ({:.0} vs {:.0})",
        glibc4.throughput,
        glibc5.throughput
    );
}

/// Fig. 3: Hoard's synchronization-free fast path ends at 256 bytes.
#[test]
fn fig3_hoard_knee_at_256b() {
    let point = |size| {
        run_threadtest(&ThreadtestConfig {
            allocator: AllocatorKind::Hoard,
            threads: 8,
            block_size: size,
            pairs_per_thread: 250,
        })
        .mops
    };
    assert!(point(128) > 2.0 * point(512));
}

/// Fig. 3: TCMalloc's central-span adjacency false-shares 16-byte blocks
/// across threads; its own 64-byte class does not.
#[test]
fn fig3_tcmalloc_16b_false_sharing_dip() {
    let p16 = run_threadtest(&ThreadtestConfig {
        allocator: AllocatorKind::TcMalloc,
        threads: 8,
        block_size: 16,
        pairs_per_thread: 250,
    });
    let p64 = run_threadtest(&ThreadtestConfig {
        allocator: AllocatorKind::TcMalloc,
        threads: 8,
        block_size: 64,
        pairs_per_thread: 250,
    });
    assert!(
        p16.l1_miss > p64.l1_miss,
        "16 B spans must false-share: L1 {:.4} vs {:.4}",
        p16.l1_miss,
        p64.l1_miss
    );
}

/// §6 (Yada): under the suite's heaviest transactional malloc/free churn,
/// Glibc's per-arena locking wastes far more lock-wait time than the
/// thread-caching allocators at 8 threads.
#[test]
fn yada_glibc_lock_waits_dominate() {
    let glibc = run_kind(
        AppKind::Yada,
        AllocatorKind::Glibc,
        8,
        &StampOpts::default(),
        4,
    );
    let tc = run_kind(
        AppKind::Yada,
        AllocatorKind::TcMalloc,
        8,
        &StampOpts::default(),
        4,
    );
    assert!(
        glibc.lock_wait_cycles > 2 * tc.lock_wait_cycles,
        "Glibc lock waits {} should dwarf TCMalloc's {}",
        glibc.lock_wait_cycles,
        tc.lock_wait_cycles
    );
}

/// Table 7: the object cache pays off for Glibc under Yada's churn; for
/// the thread-caching allocators the benefit hovers around zero (sometimes
/// negative, as the paper also observes). Individual pairs are noisy —
/// layout shifts move the abort dynamics — so compare Glibc against the
/// *mean* of the three thread-caching allocators.
#[test]
fn table7_object_cache_helps_glibc_most() {
    let gain = |kind| {
        let base = run_kind(AppKind::Yada, kind, 8, &StampOpts::default(), 8);
        let opt = run_kind(
            AppKind::Yada,
            kind,
            8,
            &StampOpts {
                object_cache: true,
                ..StampOpts::default()
            },
            8,
        );
        base.par_seconds / opt.par_seconds - 1.0
    };
    let g_glibc = gain(AllocatorKind::Glibc);
    let others = [
        gain(AllocatorKind::Hoard),
        gain(AllocatorKind::TbbMalloc),
        gain(AllocatorKind::TcMalloc),
    ];
    let mean_others = others.iter().sum::<f64>() / 3.0;
    assert!(
        g_glibc > 0.0 && g_glibc > mean_others,
        "object cache must help Glibc ({g_glibc:.3}) more than the          thread-caching mean ({mean_others:.3}, {others:.3?})"
    );
}

/// §3.5 / Table 1: minimum spacing of consecutive 16-byte allocations per
/// allocator — the root cause behind Fig. 5.
#[test]
fn table1_min_block_spacing() {
    use tm_core::build_stack;
    use tm_stm::StmConfig;
    for (kind, spacing) in [
        (AllocatorKind::Glibc, 32u64),
        (AllocatorKind::Hoard, 16),
        (AllocatorKind::TbbMalloc, 16),
        (AllocatorKind::TcMalloc, 16),
    ] {
        let stack = build_stack(kind, StmConfig::default());
        let got = parking_lot::Mutex::new(0u64);
        stack.sim.run(1, |ctx| {
            // Warm the caches/batches so spacing is steady-state.
            for _ in 0..4 {
                stack.alloc.malloc(ctx, 16);
            }
            let a = stack.alloc.malloc(ctx, 16);
            let b = stack.alloc.malloc(ctx, 16);
            *got.lock() = b.abs_diff(a);
        });
        assert_eq!(got.into_inner(), spacing, "{kind:?} spacing");
    }
}
