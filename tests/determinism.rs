//! Determinism regression gate for the scheduler fast paths.
//!
//! The simulator promises bit-level determinism: the same configuration
//! produces the same virtual clocks, the same commit/abort counts and the
//! same cache statistics on every run, on every host, at every thread
//! count — regardless of which executor backend (fibers or OS threads)
//! carried the logical threads. The fast paths added for performance
//! (solo mode, fiber hand-off, the cached thread-local clock, the
//! exclusive-line cache shortcut, the generation-stamped STM tables) all
//! argue they preserve this; here the claim is enforced end-to-end: run a
//! synthetic exhibit and a STAMP application at 1 and 8 threads, twice
//! each, and require the full `tm-run-report/v1` JSON to be byte-identical
//! run-to-run *and* equal to a committed golden.
//!
//! If an intentional model change shifts the numbers, re-bless with
//! `GOLDEN_BLESS=1 cargo test -p tm-bench --test determinism`.

use tm_alloc::AllocatorKind;
use tm_core::synthetic::{run_synthetic, SyntheticConfig};
use tm_ds::StructureKind;
use tm_stamp::runner::{run_kind, StampOpts};
use tm_stamp::AppKind;
use tm_stm::{BackendKind, CmKind};

/// One synthetic run, small enough for debug-build CI, rendered as the
/// canonical run-report JSON. The ETL default keeps the historical golden
/// name (and the v1 schema); the other backends get their own goldens
/// with a backend-tagged name and the v1.1 schema.
fn synth_backend_json(backend: BackendKind, threads: usize) -> String {
    let mut cfg =
        SyntheticConfig::scaled(StructureKind::HashSet, AllocatorKind::TbbMalloc, threads);
    cfg.initial_size = 64;
    cfg.key_range = 128;
    cfg.ops_per_thread = 200;
    cfg.buckets = 1 << 11;
    cfg.backend = backend;
    let m = run_synthetic(&cfg);
    let name = match backend {
        BackendKind::Etl => format!("determinism_synth_t{threads}"),
        other => format!("determinism_synth_{}_t{threads}", other.name()),
    };
    let mut report = tm_obs::RunReport::new(name, "determinism");
    if backend != BackendKind::Etl {
        report = report.backend(backend.name());
    }
    report
        .meta("structure", "hash")
        .meta("alloc", "tbb")
        .meta("threads", threads)
        .section("metrics", m.section())
        .to_json_string()
}

fn synth_json(threads: usize) -> String {
    synth_backend_json(BackendKind::Etl, threads)
}

/// One STAMP run (Genome: interleaving-independent checksum) as JSON.
fn stamp_backend_json(backend: BackendKind, threads: usize) -> String {
    let opts = StampOpts {
        backend,
        ..StampOpts::default()
    };
    let r = run_kind(AppKind::Genome, AllocatorKind::Glibc, threads, &opts, 1);
    let name = match backend {
        BackendKind::Etl => format!("determinism_stamp_t{threads}"),
        other => format!("determinism_stamp_{}_t{threads}", other.name()),
    };
    let mut report = tm_obs::RunReport::new(name, "determinism");
    if backend != BackendKind::Etl {
        report = report.backend(backend.name());
    }
    report
        .meta("app", "genome")
        .meta("alloc", "glibc")
        .meta("threads", threads)
        .meta("checksum", format!("{:?}", r.checksum))
        .section("metrics", r.section())
        .to_json_string()
}

fn stamp_json(threads: usize) -> String {
    stamp_backend_json(BackendKind::Etl, threads)
}

/// One synthetic run per contention manager, as JSON. Every policy gets a
/// cm-tagged v1.1 report — including suicide, whose *simulated numbers*
/// must equal the untagged ETL golden at the same thread count (the CM
/// layer's byte-identity contract, asserted separately below).
fn synth_cm_json(cm: CmKind, threads: usize) -> String {
    let mut cfg =
        SyntheticConfig::scaled(StructureKind::HashSet, AllocatorKind::TbbMalloc, threads);
    cfg.initial_size = 64;
    cfg.key_range = 128;
    cfg.ops_per_thread = 200;
    cfg.buckets = 1 << 11;
    cfg.cm = cm;
    let m = run_synthetic(&cfg);
    tm_obs::RunReport::new(
        format!("determinism_synth_cm_{}_t{threads}", cm.name()),
        "determinism",
    )
    .cm(cm.name())
    .meta("structure", "hash")
    .meta("alloc", "tbb")
    .meta("threads", threads)
    .section("metrics", m.section())
    .to_json_string()
}

fn check_golden(name: &str, actual: &str) {
    let full = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var("GOLDEN_BLESS").is_ok() {
        std::fs::write(&full, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&full)
        .unwrap_or_else(|e| panic!("missing golden file {full} ({e}); run with GOLDEN_BLESS=1"));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden — the simulation is no longer \
         reproducing the committed numbers; bless only if the model \
         intentionally changed"
    );
}

fn assert_deterministic(name: &str, run: impl Fn() -> String) {
    let first = run();
    let second = run();
    assert_eq!(first, second, "{name}: two in-process runs disagree");
    assert!(
        first.contains("tm-run-report/v1"),
        "{name}: report schema changed"
    );
    check_golden(name, &first);
}

#[test]
fn synthetic_solo_is_deterministic() {
    assert_deterministic("determinism_synth_t1.json", || synth_json(1));
}

#[test]
fn synthetic_8_threads_is_deterministic() {
    assert_deterministic("determinism_synth_t8.json", || synth_json(8));
}

#[test]
fn stamp_solo_is_deterministic() {
    assert_deterministic("determinism_stamp_t1.json", || stamp_json(1));
}

#[test]
fn stamp_8_threads_is_deterministic() {
    assert_deterministic("determinism_stamp_t8.json", || stamp_json(8));
}

#[test]
fn backend_synth_runs_are_deterministic() {
    for backend in [BackendKind::Norec, BackendKind::SimHtm] {
        for threads in [1, 8] {
            assert_deterministic(
                &format!("determinism_synth_{}_t{threads}.json", backend.name()),
                || synth_backend_json(backend, threads),
            );
        }
    }
}

#[test]
fn cm_synth_runs_are_deterministic() {
    for cm in CmKind::ALL {
        for threads in [1, 8] {
            assert_deterministic(
                &format!("determinism_synth_cm_{}_t{threads}.json", cm.name()),
                || synth_cm_json(cm, threads),
            );
        }
    }
}

/// The default-CM byte-identity contract: a run tagged `cm: suicide` must
/// simulate the exact same events as the untagged baseline — same clocks,
/// same commit/abort counts, same cache statistics. Only the report header
/// (name, schema, cm field) may differ.
#[test]
fn suicide_cm_is_byte_identical_to_the_untagged_baseline() {
    for threads in [1, 8] {
        let base = synth_json(threads);
        let tagged = synth_cm_json(CmKind::Suicide, threads);
        let body = |s: &str| s[s.find("\"sections\"").unwrap()..].to_string();
        assert_eq!(
            body(&base),
            body(&tagged),
            "t{threads}: the suicide CM perturbed the simulation"
        );
    }
}

#[test]
fn backend_stamp_runs_are_deterministic() {
    for backend in [BackendKind::Norec, BackendKind::SimHtm] {
        for threads in [1, 8] {
            assert_deterministic(
                &format!("determinism_stamp_{}_t{threads}.json", backend.name()),
                || stamp_backend_json(backend, threads),
            );
        }
    }
}
