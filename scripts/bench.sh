#!/usr/bin/env bash
# Tracked perf baselines.
#
# Default mode: time the synthetic sweep matrix and the exhibit
# regeneration, and merge the numbers with the frozen pre-contention-manager
# baseline (results/bench_before_pr7.json) into results/BENCH_pr7.json.
#
# --mc mode: time the model checker's schedule-throughput matrix
# (depth-2 and depth-3 transfer sweeps plus the mutation catalog with its
# alloc-swap cell) with checkpoint/restore prefix-tree execution, and
# merge against the frozen from-scratch baseline
# (results/bench_before_pr9.json) into results/BENCH_pr9.json. With
# --freeze, run the matrix from scratch (tmstudy mc --no-checkpoint) and
# (re)write the baseline file instead.
#
# --pr10 mode: time the same sweep matrix (best of three runs, to keep
# the comparison honest against scheduler noise) and merge against the
# frozen pre-fault-plane baseline (results/bench_before_pr10.json) into
# results/BENCH_pr10.json, gating at 5% by default: the disabled
# AllocFault hooks must be free on the malloc/tx_malloc hot path.
#
# Usage: scripts/bench.sh [--quick] [--mc] [--pr10] [--freeze] [--out FILE] [--gate PCT]
#   --quick    skip the full exhibit regeneration; time only the sweep
#              matrix (the CI perf-smoke mode — seconds, not minutes)
#   --mc       benchmark the model checker instead of the sweep matrix
#   --pr10     benchmark the fault-hook overhead against the frozen
#              pre-PR10 baseline (gate defaults to 5)
#   --freeze   (--mc only) measure from-scratch and freeze the baseline
#   --out FILE destination (default results/BENCH_pr7.json, or
#              results/BENCH_pr9.json / results/bench_before_pr9.json
#              under --mc / --mc --freeze)
#   --gate PCT exit 1 if the timed run is more than PCT percent slower
#              than the frozen baseline (only meaningful on the host the
#              baseline was measured on; CI keeps its timeout as the
#              gate). PCT may be negative: `--mc --gate -80` demands the
#              checkpointed explorer finish in under 20% of the
#              from-scratch baseline, i.e. a >=5x speedup.
#
# Wall times are host-specific: the before/after comparison is only
# meaningful on one machine, and the committed before-file records the host
# it was measured on. The structural guarantees (exhibit byte-identity,
# check matrix, checkpoint-equivalence suite) are enforced elsewhere; this
# script only tracks speed.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO="cargo --offline"

quick=0
mc=0
pr10=0
freeze=0
out=""
gate=""
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) quick=1 ;;
    --mc) mc=1 ;;
    --pr10) pr10=1 ;;
    --freeze) freeze=1 ;;
    --out) out="$2"; shift ;;
    --gate) gate="$2"; shift ;;
    *) echo "unknown flag '$1'" >&2; exit 2 ;;
  esac
  shift
done
if [ "$freeze" -eq 1 ] && [ "$mc" -eq 0 ]; then
  echo "--freeze only applies to --mc" >&2; exit 2
fi
if [ "$pr10" -eq 1 ] && [ "$mc" -eq 1 ]; then
  echo "--pr10 and --mc are mutually exclusive" >&2; exit 2
fi

if [ "$pr10" -eq 1 ]; then
  out="${out:-results/BENCH_pr10.json}"
  gate="${gate:-5}"

  echo "==> cargo build --release"
  $CARGO build --workspace --release

  # The frozen baseline was measured on the exact sweep preset below at
  # commit 2a371aa (pre-fault-plane). Best-of-three keeps one noisy run
  # from tripping a 5% gate that is really about instruction overhead.
  best_json="$(mktemp)"
  best_ms=""
  echo "==> timing: tmstudy sweep --quick (x3, best run kept)"
  for i in 1 2 3; do
    run_json="$(mktemp)"
    start=$(date +%s%N)
    ./target/release/tmstudy sweep --quick --workers 1 --name bench-pr10 \
      --out "$run_json" >/dev/null
    ms=$(( ($(date +%s%N) - start) / 1000000 ))
    echo "    run $i: ${ms} ms"
    if [ -z "$best_ms" ] || [ "$ms" -lt "$best_ms" ]; then
      best_ms=$ms
      cp "$run_json" "$best_json"
    fi
    rm -f "$run_json"
  done

  echo "==> merging into $out"
  python3 - "$best_json" "$out" "$gate" <<'EOF'
import json, os, platform, sys

sweep_path, out_path, gate = sys.argv[1:4]
sweep = json.load(open(sweep_path))
before = json.load(open('results/bench_before_pr10.json'))

after = {
    'side': 'after',
    'note': 'Same sweep preset with the AllocFault plane compiled in but '
            'disabled (AllocFaultPlan::None builds no injector at all). '
            'Best of three runs.',
    'host': {
        'os': platform.system().lower(),
        'arch': platform.machine(),
        'cores': os.cpu_count(),
    },
    'sweep': {
        'total_wall_ms': int(sweep['meta']['total_wall_ms']),
        'cells': [
            {
                'cell': '/'.join(c['config'][k]
                                 for k in ('structure', 'alloc', 'threads')),
                'wall_ms': c['wall_ms'],
                'status': c['status'],
            }
            for c in sweep['cells']
        ],
    },
}

b_ms = before['sweep']['total_wall_ms']
a_ms = after['sweep']['total_wall_ms']
doc = {
    'schema': 'tm-bench-perf/v1',
    'before': before,
    'after': after,
    'overhead_pct': round((a_ms - b_ms) * 100 / b_ms, 2) if b_ms else None,
}
json.dump(doc, open(out_path, 'w'), indent=2)
print(f"fault-hook overhead: {b_ms} ms -> {a_ms} ms "
      f"({doc['overhead_pct']:+.2f}%); wrote {out_path}")
budget = b_ms * (1 + float(gate) / 100)
if a_ms > budget:
    print(f"GATE FAIL: sweep {a_ms} ms exceeds the {gate}% budget "
          f"({budget:.0f} ms against baseline {b_ms} ms): the disabled "
          f"fault hooks are not free", file=sys.stderr)
    sys.exit(1)
print(f"gate: disabled fault hooks within {gate}% of the frozen baseline")
EOF
  rm -f "$best_json"
  exit 0
fi

if [ "$mc" -eq 1 ]; then
  echo "==> cargo build --release"
  $CARGO build --workspace --release

  side_flag=""
  mode="after"
  if [ "$freeze" -eq 1 ]; then
    side_flag="--no-checkpoint"
    mode="freeze"
    out="${out:-results/bench_before_pr9.json}"
  else
    out="${out:-results/BENCH_pr9.json}"
  fi

  tmpdir="$(mktemp -d)"
  cells_tsv="$tmpdir/cells.tsv"
  run_cell() { # label, tmstudy mc args...
    local label="$1"; shift
    local art="$tmpdir/$label.mc.json"
    local start ms
    start=$(date +%s%N)
    # shellcheck disable=SC2086
    ./target/release/tmstudy mc "$@" $side_flag --out "$art" >/dev/null
    ms=$(( ($(date +%s%N) - start) / 1000000 ))
    echo "    $label: ${ms} ms"
    printf '%s\t%s\t%s\n' "$label" "$ms" "$art" >>"$cells_tsv"
  }

  echo "==> timing: tmstudy mc matrix (${side_flag:-checkpointed})"
  # Depth-2 and depth-3 pruned transfer sweeps over the full backend x CM
  # matrix, plus the mutation catalog (whose tx-alloc-early-free cell is
  # the unpruned alloc-swap workload).
  run_cell transfer-d2 --depth 2 --name bench-mc-d2
  run_cell transfer-d3 --depth 3 --magnitudes 400,3200 --name bench-mc-d3
  run_cell catalog-quick --quick --depth 2 --name bench-mc-quick

  echo "==> merging into $out"
  python3 - "$cells_tsv" "$out" "$gate" "$mode" <<'EOF'
import json, os, platform, sys

cells_path, out_path, gate, mode = sys.argv[1:5]
rows = [l.split('\t') for l in open(cells_path).read().splitlines() if l]

cells, total_ms, total_scheds = [], 0, 0
throughput = {'replay_steps_saved': 0, 'checkpoints_taken': 0, 'deduped': 0}
for label, ms, art in rows:
    ms = int(ms)
    doc = json.load(open(art))
    scheds = sum(c.get('explored', 0) for c in doc['cells'])
    cells.append({
        'cell': label,
        'wall_ms': ms,
        'schedules': scheds,
        'schedules_per_sec': round(scheds * 1000 / ms, 1) if ms else None,
    })
    total_ms += ms
    total_scheds += scheds
    for k in throughput:
        throughput[k] += doc.get('throughput', {}).get(k, 0)

side = {
    'side': 'before' if mode == 'freeze' else 'after',
    'host': {
        'os': platform.system().lower(),
        'arch': platform.machine(),
        'cores': os.cpu_count(),
    },
    'mc': {
        'total_wall_ms': total_ms,
        'total_schedules': total_scheds,
        'cells': cells,
    },
}
if mode != 'freeze':
    side['mc']['throughput'] = throughput

if mode == 'freeze':
    json.dump(side, open(out_path, 'w'), indent=2)
    print(f"froze from-scratch mc baseline: {total_ms} ms, "
          f"{total_scheds} schedules; wrote {out_path}")
    sys.exit(0)

before = json.load(open('results/bench_before_pr9.json'))
b_ms = before['mc']['total_wall_ms']
a_ms = total_ms
by_label = {c['cell']: c for c in before['mc']['cells']}
for c in cells:
    b = by_label.get(c['cell'])
    if b and c['wall_ms']:
        c['speedup'] = round(b['wall_ms'] / c['wall_ms'], 2)
doc = {
    'schema': 'tm-bench-mc/v1',
    'before': before,
    'after': side,
    'mc_speedup': round(b_ms / a_ms, 2) if a_ms else None,
}
json.dump(doc, open(out_path, 'w'), indent=2)
print(f"mc: {b_ms} ms -> {a_ms} ms ({doc['mc_speedup']}x); wrote {out_path}")
for c in cells:
    if 'speedup' in c:
        print(f"    {c['cell']}: {c['speedup']}x "
              f"({c['schedules_per_sec']} schedules/s)")
if gate:
    budget = b_ms * (1 + float(gate) / 100)
    if a_ms > budget:
        print(f"GATE FAIL: mc matrix {a_ms} ms exceeds the {gate}% budget "
              f"({budget:.0f} ms against baseline {b_ms} ms)", file=sys.stderr)
        sys.exit(1)
    print(f"gate: within {gate}% of the frozen from-scratch baseline")
EOF
  exit 0
fi

out="${out:-results/BENCH_pr7.json}"

echo "==> cargo build --release"
$CARGO build --workspace --release

# The benchmark sweep: the same 12-cell synthetic allocator x structure
# matrix the frozen baseline was measured on (sweep --quick is exactly this
# preset). --workers 1 keeps the measurement serial and comparable.
sweep_json="$(mktemp)"
echo "==> timing: tmstudy sweep --quick"
sweep_start=$(date +%s%N)
./target/release/tmstudy sweep --quick --workers 1 --name bench \
  --out "$sweep_json" >/dev/null
sweep_ms=$(( ($(date +%s%N) - sweep_start) / 1000000 ))
echo "    sweep matrix: ${sweep_ms} ms"

timings_json="$(mktemp)"
if [ "$quick" -eq 0 ]; then
  echo "==> timing: make_all (every exhibit, uncached)"
  rm -rf results/.cache
  ./target/release/make_all --timings "$timings_json" \
    --out "$(mktemp)" 2>/dev/null
else
  echo '{}' > "$timings_json"
fi

echo "==> merging into $out"
python3 - "$sweep_json" "$timings_json" "$out" "$gate" <<'EOF'
import json, platform, sys

sweep_path, timings_path, out_path, gate = sys.argv[1:5]
sweep = json.load(open(sweep_path))
timings = json.load(open(timings_path))
before = json.load(open('results/bench_before_pr7.json'))

after = {
    'side': 'after',
    'host': {
        'os': platform.system().lower(),
        'arch': platform.machine(),
        'cores': None,
    },
    'sweep': {
        'total_wall_ms': int(sweep['meta']['total_wall_ms']),
        'cells': [
            {
                'cell': '/'.join(c['config'][k]
                                 for k in ('structure', 'alloc', 'threads')),
                'wall_ms': c['wall_ms'],
                'status': c['status'],
            }
            for c in sweep['cells']
        ],
    },
}
try:
    import os
    after['host']['cores'] = os.cpu_count()
except Exception:
    pass
if timings.get('schema') == 'tm-bench-perf/v1':
    after['exhibits'] = timings['exhibits']
    after['host'] = timings['host']

b_ms = before['sweep']['total_wall_ms']
a_ms = after['sweep']['total_wall_ms']
doc = {
    'schema': 'tm-bench-perf/v1',
    'before': before,
    'after': after,
    'sweep_speedup': round(b_ms / a_ms, 2) if a_ms else None,
}
json.dump(doc, open(out_path, 'w'), indent=2)
print(f"sweep: {b_ms} ms -> {a_ms} ms "
      f"({doc['sweep_speedup']}x); wrote {out_path}")
if gate:
    budget = b_ms * (1 + float(gate) / 100)
    if a_ms > budget:
        print(f"GATE FAIL: sweep {a_ms} ms exceeds the {gate}% budget "
              f"({budget:.0f} ms over baseline {b_ms} ms)", file=sys.stderr)
        sys.exit(1)
    print(f"gate: within {gate}% of the frozen baseline")
EOF
