#!/usr/bin/env bash
# Tracked perf baseline: time the synthetic sweep matrix and the exhibit
# regeneration, and merge the numbers with the frozen pre-contention-manager
# baseline (results/bench_before_pr7.json) into results/BENCH_pr7.json.
#
# Usage: scripts/bench.sh [--quick] [--out FILE] [--gate PCT]
#   --quick    skip the full exhibit regeneration; time only the sweep
#              matrix (the CI perf-smoke mode — seconds, not minutes)
#   --out FILE destination (default results/BENCH_pr7.json)
#   --gate PCT exit 1 if the sweep is more than PCT percent slower than
#              the frozen baseline (only meaningful on the host the
#              baseline was measured on; CI keeps its timeout as the gate)
#
# Wall times are host-specific: the before/after comparison is only
# meaningful on one machine, and the committed before-file records the host
# it was measured on. The structural guarantees (exhibit byte-identity,
# check matrix) are enforced elsewhere; this script only tracks speed.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO="cargo --offline"

quick=0
out="results/BENCH_pr7.json"
gate=""
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) quick=1 ;;
    --out) out="$2"; shift ;;
    --gate) gate="$2"; shift ;;
    *) echo "unknown flag '$1'" >&2; exit 2 ;;
  esac
  shift
done

echo "==> cargo build --release"
$CARGO build --workspace --release

# The benchmark sweep: the same 12-cell synthetic allocator x structure
# matrix the frozen baseline was measured on (sweep --quick is exactly this
# preset). --workers 1 keeps the measurement serial and comparable.
sweep_json="$(mktemp)"
echo "==> timing: tmstudy sweep --quick"
sweep_start=$(date +%s%N)
./target/release/tmstudy sweep --quick --workers 1 --name bench \
  --out "$sweep_json" >/dev/null
sweep_ms=$(( ($(date +%s%N) - sweep_start) / 1000000 ))
echo "    sweep matrix: ${sweep_ms} ms"

timings_json="$(mktemp)"
if [ "$quick" -eq 0 ]; then
  echo "==> timing: make_all (every exhibit, uncached)"
  rm -rf results/.cache
  ./target/release/make_all --timings "$timings_json" \
    --out "$(mktemp)" 2>/dev/null
else
  echo '{}' > "$timings_json"
fi

echo "==> merging into $out"
python3 - "$sweep_json" "$timings_json" "$out" "$gate" <<'EOF'
import json, platform, sys

sweep_path, timings_path, out_path, gate = sys.argv[1:5]
sweep = json.load(open(sweep_path))
timings = json.load(open(timings_path))
before = json.load(open('results/bench_before_pr7.json'))

after = {
    'side': 'after',
    'host': {
        'os': platform.system().lower(),
        'arch': platform.machine(),
        'cores': None,
    },
    'sweep': {
        'total_wall_ms': int(sweep['meta']['total_wall_ms']),
        'cells': [
            {
                'cell': '/'.join(c['config'][k]
                                 for k in ('structure', 'alloc', 'threads')),
                'wall_ms': c['wall_ms'],
                'status': c['status'],
            }
            for c in sweep['cells']
        ],
    },
}
try:
    import os
    after['host']['cores'] = os.cpu_count()
except Exception:
    pass
if timings.get('schema') == 'tm-bench-perf/v1':
    after['exhibits'] = timings['exhibits']
    after['host'] = timings['host']

b_ms = before['sweep']['total_wall_ms']
a_ms = after['sweep']['total_wall_ms']
doc = {
    'schema': 'tm-bench-perf/v1',
    'before': before,
    'after': after,
    'sweep_speedup': round(b_ms / a_ms, 2) if a_ms else None,
}
json.dump(doc, open(out_path, 'w'), indent=2)
print(f"sweep: {b_ms} ms -> {a_ms} ms "
      f"({doc['sweep_speedup']}x); wrote {out_path}")
if gate:
    budget = b_ms * (1 + float(gate) / 100)
    if a_ms > budget:
        print(f"GATE FAIL: sweep {a_ms} ms exceeds the {gate}% budget "
              f"({budget:.0f} ms over baseline {b_ms} ms)", file=sys.stderr)
        sys.exit(1)
    print(f"gate: within {gate}% of the frozen baseline")
EOF
