#!/usr/bin/env bash
# Full verification gate: everything CI runs, runnable locally and offline.
# Usage: scripts/verify.sh [--quick]
#   --quick  skip the release build (debug build + tests + lints only)
set -euo pipefail
cd "$(dirname "$0")/.."

# The workspace vendors all external deps as path shims, so builds never
# need the network; --offline makes that a hard guarantee.
CARGO="cargo --offline"

quick=0
[ "${1:-}" = "--quick" ] && quick=1

echo "==> cargo fmt --check"
$CARGO fmt --all -- --check

echo "==> cargo build (debug)"
$CARGO build --workspace

if [ "$quick" -eq 0 ]; then
  echo "==> cargo build --release"
  $CARGO build --workspace --release
fi

echo "==> cargo test"
$CARGO test --workspace -q

echo "==> cargo clippy -D warnings"
$CARGO clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" $CARGO doc --workspace --no-deps -q

if [ "$quick" -eq 0 ]; then
  echo "==> tmstudy book --check (REPRODUCTION.md drift)"
  $CARGO run --release -p tm-core --bin tmstudy -- book --check
fi

echo "==> tmstudy check --quick (correctness matrix)"
if [ "$quick" -eq 0 ]; then
  $CARGO run --release -p tm-core --bin tmstudy -- check --quick
else
  $CARGO run -p tm-core --bin tmstudy -- check --quick
fi

# The schedule model checker must keep its teeth: every catalog mutant
# caught with a shrunk counterexample, zero violations on the clean STM.
echo "==> tmstudy mc --quick (schedule model checker)"
mc_out="$(mktemp)"
if [ "$quick" -eq 0 ]; then
  $CARGO run --release -p tm-core --bin tmstudy -- mc --quick \
    --name verify-mc --out "$mc_out" >/dev/null
else
  $CARGO run -p tm-core --bin tmstudy -- mc --quick \
    --name verify-mc --out "$mc_out" >/dev/null
fi
rm -f "$mc_out"

# The allocation-failure plane must keep its teeth too: every allocation
# site, when failed, must yield either a committed retry or a clean
# AllocFailed abort — zero leaks, zero invariant violations.
echo "==> tmstudy mc --oom (every-site OOM sweep)"
oom_out="$(mktemp)"
if [ "$quick" -eq 0 ]; then
  $CARGO run --release -p tm-core --bin tmstudy -- mc --oom \
    --name verify-oom --out "$oom_out" >/dev/null
else
  $CARGO run -p tm-core --bin tmstudy -- mc --oom \
    --name verify-oom --out "$oom_out" >/dev/null
fi
rm -f "$oom_out"

# The non-default backend must keep sweeping end-to-end (trait dispatch,
# CLI plumbing, report emission), not just pass unit tests.
echo "==> tmstudy sweep --quick --backend norec (backend smoke)"
backend_out="$(mktemp)"
if [ "$quick" -eq 0 ]; then
  $CARGO run --release -p tm-core --bin tmstudy -- sweep --quick \
    --backend norec --workers 1 --name verify-norec --out "$backend_out" \
    >/dev/null
else
  $CARGO run -p tm-core --bin tmstudy -- sweep --quick \
    --backend norec --workers 1 --name verify-norec --out "$backend_out" \
    >/dev/null
fi
rm -f "$backend_out"

# Same smoke for the non-default contention manager (the generic CM
# dispatch path, exercised by CI's perf-smoke job too).
echo "==> tmstudy sweep --quick --cm backoff (contention-manager smoke)"
cm_out="$(mktemp)"
if [ "$quick" -eq 0 ]; then
  $CARGO run --release -p tm-core --bin tmstudy -- sweep --quick \
    --cm backoff --workers 1 --name verify-cm-backoff --out "$cm_out" \
    >/dev/null
else
  $CARGO run -p tm-core --bin tmstudy -- sweep --quick \
    --cm backoff --workers 1 --name verify-cm-backoff --out "$cm_out" \
    >/dev/null
fi
rm -f "$cm_out"

echo "verify: all gates passed"
